package par

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/budget"
)

// Pool is a bounded work-slot scheduler shared across concurrent pipeline
// runs. A per-run ForEachErr sizes its worker count to one circuit: small
// circuits undersubscribe the machine (a 2-block circuit keeps 2 of 16
// cores busy) and N concurrent runs oversubscribe it N-fold. A Pool fixes
// both: every run draws per-index slots from one shared budget of
// `workers` concurrently-running units, so a corpus compilation or a
// questd worker fleet keeps exactly `workers` blocks in flight machine-wide
// regardless of how the blocks are distributed across circuits.
//
// Fairness: slots are released after every index, and blocked acquirers
// wake in FIFO order (Go channel semantics), so interleaved runs progress
// round-robin-ish; no run can hold slots across indices and starve the
// rest. Determinism: scheduling order is NOT deterministic, but every
// caller follows the package rule — fn(i) writes only slot i of pre-sized
// storage — so results are bit-identical for any pool size, any number of
// concurrent runs, and any interleaving. Tests assert both properties.
//
// Nesting rule: fn must not itself acquire from the same Pool (directly
// or transitively). All slots could then be held by callers blocked on
// their own children — deadlock. Nested parallel loops (e.g. pairwise
// distance fills inside block synthesis) use the plain ForEach helpers,
// which spawn their own short-lived goroutines.
type Pool struct {
	slots chan struct{}
}

// NewPool returns a Pool with the given number of slots; workers <= 0
// selects runtime.NumCPU().
func NewPool(workers int) *Pool {
	workers = Workers(workers)
	p := &Pool{slots: make(chan struct{}, workers)}
	for i := 0; i < workers; i++ {
		p.slots <- struct{}{}
	}
	return p
}

// Size returns the pool's slot count.
func (p *Pool) Size() int { return cap(p.slots) }

// Acquire blocks until a slot is free or ctx is done, returning the typed
// budget error in the latter case. Every successful Acquire must be paired
// with Release.
func (p *Pool) Acquire(ctx context.Context) error {
	// Fast path keeps an uncontended pool cheap; the ctx check first
	// preserves "never start work under an expired budget".
	if err := budget.Check(ctx); err != nil {
		return err
	}
	select {
	case <-p.slots:
		return nil
	default:
	}
	select {
	case <-p.slots:
		return nil
	case <-ctx.Done():
		return budget.Check(ctx)
	}
}

// Release returns a slot taken by Acquire.
func (p *Pool) Release() { p.slots <- struct{}{} }

// ForEachErr is par.ForEachErr drawing its concurrency from the shared
// pool instead of a private worker count: fn(ctx, i) runs for every i in
// [0, n), each index under one pool slot, with the same error-by-lowest-
// index, cancellation, and panic-isolation semantics. At most Size()
// indices across ALL concurrent callers run at once.
func (p *Pool) ForEachErr(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if err := budget.Check(ctx); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()

	spawn := p.Size()
	if spawn > n {
		spawn = n
	}
	if spawn <= 1 {
		for i := 0; i < n; i++ {
			if err := budget.Check(ctx); err != nil {
				return err
			}
			if err := p.Acquire(gctx); err != nil {
				return err
			}
			err := protect(gctx, 0, i, fn)
			p.Release()
			if err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	errs := make([]error, n) // slot i records fn(gctx, i)'s failure
	wg.Add(spawn)
	for w := 0; w < spawn; w++ {
		go func(worker int) {
			defer wg.Done()
			for gctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := p.Acquire(gctx); err != nil {
					// gctx is done: either the run's budget expired (the
					// final budget.Check reports it) or a sibling failed
					// (its error wins by index order).
					return
				}
				err := protect(gctx, worker, i, fn)
				p.Release()
				if err != nil {
					errs[i] = err
					cancel() // stop the group; siblings drain at their next check
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// No fn failed; if the parent context expired mid-loop some indices
	// were skipped, so the run is incomplete and must report it.
	return budget.Check(ctx)
}
