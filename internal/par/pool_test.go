package par

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/budget"
)

func TestPoolBoundsConcurrencyAcrossRuns(t *testing.T) {
	const slots, runs, perRun = 3, 5, 40
	p := NewPool(slots)
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	results := make([][]int, runs)
	for r := 0; r < runs; r++ {
		results[r] = make([]int, perRun)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			err := p.ForEachErr(context.Background(), perRun, func(_ context.Context, i int) error {
				cur := inFlight.Add(1)
				for {
					old := peak.Load()
					if cur <= old || peak.CompareAndSwap(old, cur) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				inFlight.Add(-1)
				results[r][i] = r*1000 + i
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}(r)
	}
	wg.Wait()
	if got := peak.Load(); got > slots {
		t.Fatalf("peak in-flight = %d, pool has %d slots", got, slots)
	}
	for r := 0; r < runs; r++ {
		for i := 0; i < perRun; i++ {
			if results[r][i] != r*1000+i {
				t.Fatalf("run %d slot %d = %d (slot-write rule violated)", r, i, results[r][i])
			}
		}
	}
}

func TestPoolForEachErrLowestIndexWins(t *testing.T) {
	p := NewPool(4)
	err := p.ForEachErr(context.Background(), 32, func(_ context.Context, i int) error {
		if i%3 == 1 {
			return fmt.Errorf("fail-%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail-1" {
		t.Fatalf("err = %v, want fail-1 (lowest failing index)", err)
	}
}

func TestPoolForEachErrPanicIsolated(t *testing.T) {
	p := NewPool(2)
	err := p.ForEachErr(context.Background(), 8, func(_ context.Context, i int) error {
		if i == 3 {
			panic("boom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 3 {
		t.Fatalf("panic index = %d, want 3", pe.Index)
	}
}

func TestPoolForEachErrCancellation(t *testing.T) {
	p := NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	block := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- p.ForEachErr(ctx, 100, func(c context.Context, i int) error {
			started.Add(1)
			select {
			case <-block:
			case <-c.Done():
			}
			return nil
		})
	}()
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, budget.ErrCancelled) {
			t.Fatalf("err = %v, want ErrCancelled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForEachErr did not return after cancellation")
	}
	close(block)
}

func TestPoolForEachErrExpiredBudgetRefusesWork(t *testing.T) {
	p := NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := p.ForEachErr(ctx, 4, func(context.Context, int) error {
		called = true
		return nil
	})
	if !errors.Is(err, budget.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if called {
		t.Fatal("fn ran under an expired budget")
	}
}

func TestPoolSingleSlotInlineSemantics(t *testing.T) {
	p := NewPool(1)
	var order []int
	err := p.ForEachErr(context.Background(), 5, func(_ context.Context, i int) error {
		order = append(order, i) // safe: one slot serializes everything
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("single-slot pool ran out of order: %v", order)
		}
	}
}

func TestPoolAcquireReleaseRoundTrip(t *testing.T) {
	p := NewPool(1)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Acquire(ctx); !errors.Is(err, budget.ErrDeadline) {
		t.Fatalf("second Acquire = %v, want ErrDeadline", err)
	}
	p.Release()
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire after Release = %v", err)
	}
	p.Release()
	if got := p.Size(); got != 1 {
		t.Fatalf("Size = %d, want 1", got)
	}
}

func TestPoolZeroItems(t *testing.T) {
	p := NewPool(2)
	if err := p.ForEachErr(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
}
