// Package par provides the small deterministic parallel-execution helper
// shared by the simulation substrate (noise trajectories, unitary column
// evolution, ensemble evaluation) and the core pipeline. The design rule,
// stated once here and relied on everywhere: a parallel loop must produce
// bit-identical results for every worker count. ForEach guarantees this
// mechanically — each index writes only its own slot — so callers only
// need a deterministic per-index function plus an index-ordered reduction.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/budget"
)

// Workers normalizes a parallelism knob: values <= 0 select
// runtime.NumCPU(), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// ForEach calls fn(i) for every i in [0, n) using at most `workers`
// concurrent goroutines (workers <= 0 selects runtime.NumCPU()) and
// returns when every call has finished. With one worker (or n <= 1) it
// runs inline with no goroutines. fn must be safe for concurrent
// invocation with distinct indices; determinism under any worker count is
// obtained by having fn(i) write only to slot i of pre-sized output
// storage and reducing in index order afterwards. A panic in any fn is
// re-raised in the caller after the remaining workers drain.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() {
						panicked = r
						next.Store(int64(n)) // stop handing out work
					})
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// PanicError is a worker panic recovered by ForEachErr: the pipeline's
// alternative to crashing the whole process when one parallel unit dies.
// It records which worker goroutine and which loop index failed, the
// panic value, and the goroutine stack at the point of the panic.
type PanicError struct {
	// Worker is the worker goroutine index (0 for the inline path).
	Worker int
	// Index is the loop index whose fn call panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the worker's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: worker %d: panic at index %d: %v", e.Worker, e.Index, e.Value)
}

// ForEachErr is ForEach for fallible work: it calls fn(ctx, i) for every
// i in [0, n) with at most `workers` goroutines and returns the first
// failure by index order. Three things distinguish it from ForEach:
//
//   - Cancellation: the loop stops handing out new indices as soon as
//     ctx is done, and returns the typed budget error (ErrDeadline or
//     ErrCancelled). A zero or negative n returns immediately (after the
//     ctx check) without spawning workers.
//   - Error propagation: the first fn error cancels the group context —
//     in-flight fn calls that honor ctx stop early — and is returned.
//     When several indices fail before the group drains, the error of
//     the lowest index wins, keeping the returned error deterministic.
//   - Panic isolation: a panic in fn is recovered and surfaced as a
//     *PanicError carrying the worker index and stack, instead of
//     crashing the process. A panic cancels the group like an error.
//
// Determinism of results follows the ForEach rule: fn(ctx, i) writes
// only to slot i of pre-sized storage.
func ForEachErr(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if err := budget.Check(ctx); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := budget.Check(ctx); err != nil {
				return err
			}
			if err := protect(gctx, 0, i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	errs := make([]error, n) // slot i records fn(gctx, i)'s failure
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for gctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := protect(gctx, worker, i, fn); err != nil {
					errs[i] = err
					cancel() // stop the group; siblings drain at their next check
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// No fn failed; if the parent context expired mid-loop some indices
	// were skipped, so the run is incomplete and must report it.
	return budget.Check(ctx)
}

// protect runs one fn call with panic recovery.
func protect(ctx context.Context, worker, index int, fn func(context.Context, int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Worker: worker, Index: index, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, index)
}
