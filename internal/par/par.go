// Package par provides the small deterministic parallel-execution helper
// shared by the simulation substrate (noise trajectories, unitary column
// evolution, ensemble evaluation) and the core pipeline. The design rule,
// stated once here and relied on everywhere: a parallel loop must produce
// bit-identical results for every worker count. ForEach guarantees this
// mechanically — each index writes only its own slot — so callers only
// need a deterministic per-index function plus an index-ordered reduction.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a parallelism knob: values <= 0 select
// runtime.NumCPU(), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// ForEach calls fn(i) for every i in [0, n) using at most `workers`
// concurrent goroutines (workers <= 0 selects runtime.NumCPU()) and
// returns when every call has finished. With one worker (or n <= 1) it
// runs inline with no goroutines. fn must be safe for concurrent
// invocation with distinct indices; determinism under any worker count is
// obtained by having fn(i) write only to slot i of pre-sized output
// storage and reducing in index order afterwards. A panic in any fn is
// re-raised in the caller after the remaining workers drain.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() {
						panicked = r
						next.Store(int64(n)) // stop handing out work
					})
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
