// Package density implements an exact density-matrix simulator with
// quantum channels (Pauli, depolarizing, amplitude damping, bit-flip
// readout). It is exponentially more expensive than the trajectory
// sampler in package noise (4^n vs 2^n state), but exact: the test suites
// use it to cross-validate the Monte-Carlo trajectory results, and small
// experiments can use it to remove sampling noise entirely.
package density

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/circuit"
	"repro/internal/gate"
	"repro/internal/linalg"
)

// Matrix is a density operator ρ on n qubits: a 2^n x 2^n positive
// semi-definite matrix with unit trace.
type Matrix struct {
	N   int // number of qubits
	Rho *linalg.Matrix
}

// Zero returns the pure state |0...0><0...0| on n qubits.
func Zero(n int) *Matrix {
	dim := 1 << n
	rho := linalg.New(dim, dim)
	rho.Set(0, 0, 1)
	return &Matrix{N: n, Rho: rho}
}

// FromState returns the pure-state density matrix |ψ><ψ|.
func FromState(state linalg.Vector) *Matrix {
	dim := len(state)
	n := 0
	for 1<<n < dim {
		n++
	}
	if 1<<n != dim {
		panic(fmt.Sprintf("density: state length %d is not 2^n", dim))
	}
	rho := linalg.New(dim, dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			rho.Set(i, j, state[i]*cmplx.Conj(state[j]))
		}
	}
	return &Matrix{N: n, Rho: rho}
}

// Trace returns Tr(ρ) (1 for a valid state).
func (m *Matrix) Trace() complex128 { return m.Rho.Trace() }

// Purity returns Tr(ρ²): 1 for pure states, 1/2^n for the maximally mixed
// state.
func (m *Matrix) Purity() float64 {
	return real(linalg.Mul(m.Rho, m.Rho).Trace())
}

// Probabilities returns the diagonal of ρ: the measurement distribution in
// the computational basis.
func (m *Matrix) Probabilities() []float64 {
	dim := m.Rho.Rows
	p := make([]float64, dim)
	for k := 0; k < dim; k++ {
		p[k] = real(m.Rho.At(k, k))
	}
	return p
}

// expand returns the full-space matrix of a small gate on the listed
// qubits (first listed = most significant local bit).
func expand(n int, g *linalg.Matrix, qubits []int) *linalg.Matrix {
	dim := 1 << n
	k := len(qubits)
	gdim := 1 << k
	pos := make([]int, k)
	for i, q := range qubits {
		pos[k-1-i] = q
	}
	out := linalg.New(dim, dim)
	for i := 0; i < dim; i++ {
		// Local index of row i.
		var li int
		for j := 0; j < k; j++ {
			if i&(1<<pos[j]) != 0 {
				li |= 1 << j
			}
		}
		rest := i
		for _, p := range pos {
			rest &^= 1 << p
		}
		for lj := 0; lj < gdim; lj++ {
			v := g.At(li, lj)
			if v == 0 {
				continue
			}
			jIdx := rest
			for j := 0; j < k; j++ {
				if lj&(1<<j) != 0 {
					jIdx |= 1 << pos[j]
				}
			}
			out.Set(i, jIdx, v)
		}
	}
	return out
}

// ApplyUnitary applies ρ ← UρU† for a small gate matrix on the listed
// qubits.
func (m *Matrix) ApplyUnitary(g *linalg.Matrix, qubits []int) {
	u := expand(m.N, g, qubits)
	m.Rho = linalg.Mul(linalg.Mul(u, m.Rho), u.Dagger())
}

// ApplyKraus applies the channel ρ ← Σ_k K_k ρ K_k† where each Kraus
// operator acts on the listed qubits.
func (m *Matrix) ApplyKraus(ks []*linalg.Matrix, qubits []int) {
	dim := m.Rho.Rows
	sum := linalg.New(dim, dim)
	for _, k := range ks {
		kf := expand(m.N, k, qubits)
		term := linalg.Mul(linalg.Mul(kf, m.Rho), kf.Dagger())
		sum = linalg.Add(sum, term)
	}
	m.Rho = sum
}

// PauliChannel returns the Kraus operators of the one-qubit channel that
// applies X, Y, Z each with probability p/3 (identity with 1-p) — the
// paper's Pauli error model.
func PauliChannel(p float64) []*linalg.Matrix {
	if p < 0 || p > 1 {
		panic("density: probability out of range")
	}
	s := complex(math.Sqrt(1-p), 0)
	t := complex(math.Sqrt(p/3), 0)
	return []*linalg.Matrix{
		linalg.Scale(s, gate.PauliI),
		linalg.Scale(t, gate.PauliX),
		linalg.Scale(t, gate.PauliY),
		linalg.Scale(t, gate.PauliZ),
	}
}

// DepolarizingChannel returns the one-qubit depolarizing channel
// ρ ← (1-p)ρ + p·I/2 as Kraus operators.
func DepolarizingChannel(p float64) []*linalg.Matrix {
	// Identical Kraus structure to the Pauli channel with weight 3p/4.
	return PauliChannel(3 * p / 4)
}

// AmplitudeDampingChannel returns the one-qubit amplitude damping channel
// with decay probability gamma (models T1 relaxation toward |0>).
func AmplitudeDampingChannel(gamma float64) []*linalg.Matrix {
	if gamma < 0 || gamma > 1 {
		panic("density: gamma out of range")
	}
	k0 := linalg.FromRows([][]complex128{
		{1, 0},
		{0, complex(math.Sqrt(1-gamma), 0)},
	})
	k1 := linalg.FromRows([][]complex128{
		{0, complex(math.Sqrt(gamma), 0)},
		{0, 0},
	})
	return []*linalg.Matrix{k0, k1}
}

// BitFlipChannel returns the readout bit-flip channel with probability e.
func BitFlipChannel(e float64) []*linalg.Matrix {
	return []*linalg.Matrix{
		linalg.Scale(complex(math.Sqrt(1-e), 0), gate.PauliI),
		linalg.Scale(complex(math.Sqrt(e), 0), gate.PauliX),
	}
}

// Model mirrors noise.Model for exact simulation: per-gate Pauli errors
// and readout bit flips.
type Model struct {
	// OneQubitError is the per-qubit Pauli error probability after
	// one-qubit gates.
	OneQubitError float64
	// TwoQubitError is the same for two-qubit (and wider) gates.
	TwoQubitError float64
	// ReadoutError is the per-qubit measurement bit-flip probability.
	ReadoutError float64
}

// Run evolves |0...0> through the circuit applying the model's channels
// after every gate, and returns the exact output distribution.
func (mod Model) Run(c *circuit.Circuit) []float64 {
	rho := Zero(c.NumQubits)
	var ch1, ch2 []*linalg.Matrix
	if mod.OneQubitError > 0 {
		ch1 = PauliChannel(mod.OneQubitError)
	}
	if mod.TwoQubitError > 0 {
		ch2 = PauliChannel(mod.TwoQubitError)
	}
	for _, op := range c.Ops {
		g := gate.MustLookup(op.Name).Build(op.Params)
		rho.ApplyUnitary(g, op.Qubits)
		ch := ch1
		if len(op.Qubits) >= 2 {
			ch = ch2
		}
		if ch != nil {
			for _, q := range op.Qubits {
				rho.ApplyKraus(ch, []int{q})
			}
		}
	}
	if mod.ReadoutError > 0 {
		ro := BitFlipChannel(mod.ReadoutError)
		for q := 0; q < c.NumQubits; q++ {
			rho.ApplyKraus(ro, []int{q})
		}
	}
	return rho.Probabilities()
}

// Ideal runs the circuit without noise and returns the distribution —
// useful to validate the density representation itself.
func Ideal(c *circuit.Circuit) []float64 {
	return Model{}.Run(c)
}
