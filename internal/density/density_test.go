package density

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/gate"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/sim"
)

func bell() *circuit.Circuit {
	c := circuit.New(2)
	c.H(0)
	c.CX(0, 1)
	return c
}

func TestZeroState(t *testing.T) {
	m := Zero(2)
	if cmplx.Abs(m.Trace()-1) > 1e-12 {
		t.Errorf("Tr = %v", m.Trace())
	}
	if math.Abs(m.Purity()-1) > 1e-12 {
		t.Errorf("purity = %g", m.Purity())
	}
	p := m.Probabilities()
	if p[0] != 1 {
		t.Errorf("P(00) = %g", p[0])
	}
}

func TestFromState(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	psi := linalg.RandomState(8, rng)
	m := FromState(psi)
	if cmplx.Abs(m.Trace()-1) > 1e-9 {
		t.Errorf("Tr = %v", m.Trace())
	}
	if math.Abs(m.Purity()-1) > 1e-9 {
		t.Errorf("purity = %g", m.Purity())
	}
	p := m.Probabilities()
	want := psi.Probabilities()
	for i := range p {
		if math.Abs(p[i]-want[i]) > 1e-9 {
			t.Fatalf("diag[%d] = %g, want %g", i, p[i], want[i])
		}
	}
}

func TestFromStateBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two state")
		}
	}()
	FromState(linalg.NewVector(3))
}

func TestIdealMatchesStatevector(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		c := circuit.New(3)
		for i := 0; i < 15; i++ {
			switch rng.Intn(3) {
			case 0:
				c.H(rng.Intn(3))
			case 1:
				c.RY(rng.Intn(3), rng.Float64()*2)
			default:
				a := rng.Intn(3)
				b := (a + 1 + rng.Intn(2)) % 3
				c.CX(a, b)
			}
		}
		got := Ideal(c)
		want := sim.Probabilities(c)
		if metrics.TVD(got, want) > 1e-9 {
			t.Fatalf("trial %d: density ideal differs from statevector", trial)
		}
	}
}

func TestPauliChannelTracePreserving(t *testing.T) {
	for _, p := range []float64{0, 0.1, 0.5, 1} {
		ks := PauliChannel(p)
		sum := linalg.New(2, 2)
		for _, k := range ks {
			sum = linalg.Add(sum, linalg.Mul(k.Dagger(), k))
		}
		if !linalg.EqualApprox(sum, linalg.Identity(2), 1e-12) {
			t.Errorf("Pauli(%g): Σ K†K != I", p)
		}
	}
}

func TestAmplitudeDampingChannel(t *testing.T) {
	ks := AmplitudeDampingChannel(0.3)
	sum := linalg.New(2, 2)
	for _, k := range ks {
		sum = linalg.Add(sum, linalg.Mul(k.Dagger(), k))
	}
	if !linalg.EqualApprox(sum, linalg.Identity(2), 1e-12) {
		t.Error("amplitude damping: Σ K†K != I")
	}
	// |1> decays toward |0>: after the channel P(0) = gamma.
	m := Zero(1)
	m.ApplyUnitary(gate.PauliX, []int{0})
	m.ApplyKraus(ks, []int{0})
	p := m.Probabilities()
	if math.Abs(p[0]-0.3) > 1e-12 {
		t.Errorf("P(0) after damping = %g, want 0.3", p[0])
	}
}

func TestDepolarizingFullyMixes(t *testing.T) {
	m := Zero(1)
	m.ApplyKraus(DepolarizingChannel(1), []int{0})
	p := m.Probabilities()
	if math.Abs(p[0]-0.5) > 1e-12 || math.Abs(p[1]-0.5) > 1e-12 {
		t.Errorf("full depolarizing gave %v", p)
	}
	if math.Abs(m.Purity()-0.5) > 1e-12 {
		t.Errorf("purity = %g, want 0.5", m.Purity())
	}
}

func TestReadoutChannelMatchesAnalytic(t *testing.T) {
	// Compare the Kraus bit-flip channel against noise.ApplyReadoutError.
	c := bell()
	m := Model{ReadoutError: 0.1}
	got := m.Run(c)
	want := noise.ApplyReadoutError(sim.Probabilities(c), 2, 0.1)
	if metrics.TVD(got, want) > 1e-9 {
		t.Errorf("readout channels disagree: %v vs %v", got, want)
	}
}

func TestNoiseLowersPurity(t *testing.T) {
	c := bell()
	rho := Zero(2)
	for _, op := range c.Ops {
		g := op.Spec().Build(op.Params)
		rho.ApplyUnitary(g, op.Qubits)
	}
	if math.Abs(rho.Purity()-1) > 1e-9 {
		t.Fatal("unitary evolution changed purity")
	}
	rho.ApplyKraus(PauliChannel(0.2), []int{0})
	if rho.Purity() >= 1-1e-9 {
		t.Error("Pauli channel did not decohere the state")
	}
}

// TestTrajectoryMatchesExact is the key cross-validation: the Monte-Carlo
// trajectory sampler in package noise converges to this package's exact
// channel evolution.
func TestTrajectoryMatchesExact(t *testing.T) {
	c := circuit.New(2)
	for i := 0; i < 5; i++ {
		c.RY(0, 0.4)
		c.CX(0, 1)
		c.RY(1, 0.3)
	}
	exact := Model{OneQubitError: 0.002, TwoQubitError: 0.02}.Run(c)
	sampled := noise.Model{OneQubitError: 0.002, TwoQubitError: 0.02}.Run(c,
		noise.Options{Trajectories: 4000, Seed: 5})
	if tvd := metrics.TVD(exact, sampled); tvd > 0.02 {
		t.Errorf("trajectory sampler diverges from exact channels: TVD %g", tvd)
	}
}

func TestModelRunNormalized(t *testing.T) {
	c := bell()
	p := Model{OneQubitError: 0.01, TwoQubitError: 0.05, ReadoutError: 0.02}.Run(c)
	var s float64
	for _, v := range p {
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("distribution sums to %g", s)
	}
}

func TestPropChannelsPreserveTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		psi := linalg.RandomState(4, r)
		m := FromState(psi)
		m.ApplyKraus(PauliChannel(r.Float64()), []int{r.Intn(2)})
		m.ApplyKraus(AmplitudeDampingChannel(r.Float64()), []int{r.Intn(2)})
		return cmplx.Abs(m.Trace()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPropPurityNonIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		psi := linalg.RandomState(4, r)
		m := FromState(psi)
		before := m.Purity()
		m.ApplyKraus(PauliChannel(0.3), []int{r.Intn(2)})
		return m.Purity() <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}
