package gate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

const tol = 1e-10

func TestAllGatesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, name := range Names() {
		s := MustLookup(name)
		for trial := 0; trial < 3; trial++ {
			p := make([]float64, s.Params)
			for i := range p {
				p[i] = rng.Float64()*4*math.Pi - 2*math.Pi
			}
			u := s.Build(p)
			if !u.IsUnitary(1e-9) {
				t.Errorf("gate %s(%v) is not unitary", name, p)
			}
			if u.Rows != 1<<s.Qubits {
				t.Errorf("gate %s dimension %d, want %d", name, u.Rows, 1<<s.Qubits)
			}
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nonsense"); err == nil {
		t.Error("Lookup of unknown gate succeeded")
	}
}

func TestHadamardSquaresToIdentity(t *testing.T) {
	h := MustLookup("h").Build(nil)
	if !linalg.EqualApprox(linalg.Mul(h, h), linalg.Identity(2), tol) {
		t.Error("H^2 != I")
	}
}

func TestSIsSquareRootOfZ(t *testing.T) {
	s := MustLookup("s").Build(nil)
	if !linalg.EqualApprox(linalg.Mul(s, s), PauliZ, tol) {
		t.Error("S^2 != Z")
	}
}

func TestTIsFourthRootOfZ(t *testing.T) {
	tm := MustLookup("t").Build(nil)
	got := linalg.MulChain(tm, tm, tm, tm)
	if !linalg.EqualApprox(got, PauliZ, tol) {
		t.Error("T^4 != Z")
	}
}

func TestSXSquaresToX(t *testing.T) {
	sx := MustLookup("sx").Build(nil)
	if !linalg.EqualApprox(linalg.Mul(sx, sx), PauliX, tol) {
		t.Error("SX^2 != X")
	}
}

func TestCXAction(t *testing.T) {
	cx := MustLookup("cx").Build(nil)
	// |10> -> |11> (first qubit is control = MSB)
	v := linalg.BasisVector(4, 2)
	got := linalg.ApplyMatrix(cx, v)
	want := linalg.BasisVector(4, 3)
	for i := range got {
		if d := got[i] - want[i]; real(d)*real(d)+imag(d)*imag(d) > tol {
			t.Fatalf("CX|10> = %v, want |11>", got)
		}
	}
}

func TestSwapDecomposesToThreeCX(t *testing.T) {
	cx := MustLookup("cx").Build(nil)
	// cx reversed (control on second qubit): permute basis 1<->2
	cxr := linalg.FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
		{0, 1, 0, 0},
	})
	swap := MustLookup("swap").Build(nil)
	got := linalg.MulChain(cx, cxr, cx)
	if !linalg.EqualApprox(got, swap, tol) {
		t.Error("CX·CX(reversed)·CX != SWAP")
	}
}

func TestRotationsAtZeroAreIdentity(t *testing.T) {
	for _, name := range []string{"rx", "ry", "rz", "p", "rzz", "rxx", "ryy", "cp", "crz"} {
		s := MustLookup(name)
		u := s.Build([]float64{0})
		if !linalg.EqualApprox(u, linalg.Identity(u.Rows), tol) {
			t.Errorf("%s(0) != I", name)
		}
	}
}

func TestRXAtPiIsXUpToPhase(t *testing.T) {
	u := RXMatrix(math.Pi)
	// RX(π) = -iX
	want := linalg.Scale(complex(0, -1), PauliX)
	if !linalg.EqualApprox(u, want, tol) {
		t.Errorf("RX(π) = %v, want -iX", u)
	}
}

func TestU3Specializations(t *testing.T) {
	// U3(θ, -π/2, π/2) = RX(θ)
	theta := 0.7
	if !linalg.EqualApprox(U3Matrix(theta, -math.Pi/2, math.Pi/2), RXMatrix(theta), tol) {
		t.Error("U3(θ,-π/2,π/2) != RX(θ)")
	}
	// U3(θ, 0, 0) = RY(θ)
	if !linalg.EqualApprox(U3Matrix(theta, 0, 0), RYMatrix(theta), tol) {
		t.Error("U3(θ,0,0) != RY(θ)")
	}
}

func TestRZZDiagonal(t *testing.T) {
	theta := 1.3
	u := RZZMatrix(theta)
	// exp(-iθ/2) on |00>,|11>; exp(+iθ/2) on |01>,|10>
	if math.Abs(real(u.At(0, 0))-math.Cos(theta/2)) > tol {
		t.Error("RZZ diagonal wrong")
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if r != c && u.At(r, c) != 0 {
				t.Fatal("RZZ not diagonal")
			}
		}
	}
}

func TestInverses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, name := range Names() {
		s := MustLookup(name)
		p := make([]float64, s.Params)
		for i := range p {
			p[i] = rng.Float64()*2*math.Pi - math.Pi
		}
		invName, invP := s.Inverse(p)
		invSpec := MustLookup(invName)
		u := s.Build(p)
		ui := invSpec.Build(invP)
		if !linalg.EqualApprox(linalg.Mul(u, ui), linalg.Identity(u.Rows), 1e-9) {
			t.Errorf("gate %s: U * U^-1 != I", name)
		}
	}
}

// TestDerivatives compares every analytic derivative against central
// finite differences.
func TestDerivatives(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const h = 1e-6
	for _, name := range Names() {
		s := MustLookup(name)
		if s.Params == 0 {
			continue
		}
		for trial := 0; trial < 3; trial++ {
			p := make([]float64, s.Params)
			for i := range p {
				p[i] = rng.Float64()*4 - 2
			}
			for k := 0; k < s.Params; k++ {
				got := s.Deriv(p, k)
				pp := append([]float64(nil), p...)
				pp[k] += h
				up := s.Build(pp)
				pp[k] -= 2 * h
				um := s.Build(pp)
				num := linalg.Scale(complex(1/(2*h), 0), linalg.Sub(up, um))
				if linalg.MaxAbsDiff(got, num) > 1e-6 {
					t.Errorf("gate %s d/dp[%d] analytic != numeric (diff %g)",
						name, k, linalg.MaxAbsDiff(got, num))
				}
			}
		}
	}
}

func TestPropRZComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(a, b float64) bool {
		a = math.Mod(a, math.Pi)
		b = math.Mod(b, math.Pi)
		lhs := linalg.Mul(RZMatrix(a), RZMatrix(b))
		rhs := RZMatrix(a + b)
		return linalg.EqualApprox(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPropRotationPeriodicity(t *testing.T) {
	// R(θ+4π) == R(θ) exactly (period 4π due to half-angle).
	rng := rand.New(rand.NewSource(5))
	f := func(theta float64) bool {
		theta = math.Mod(theta, math.Pi)
		for _, mk := range []func(float64) *linalg.Matrix{RXMatrix, RYMatrix, RZMatrix} {
			if !linalg.EqualApprox(mk(theta), mk(theta+4*math.Pi), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCNOTCosts(t *testing.T) {
	want := map[string]int{
		"h": 0, "x": 0, "rz": 0, "u3": 0, "sx": 0,
		"cx": 1, "cz": 1,
		"swap": 3, "ccx": 6, "ch": 2,
		"rzz": 2, "rxx": 2, "ryy": 2, "cp": 2, "crz": 2,
	}
	for name, cost := range want {
		if got := MustLookup(name).CNOTCost; got != cost {
			t.Errorf("CNOTCost(%s) = %d, want %d", name, got, cost)
		}
	}
}
