// Package gate defines the quantum gate library: fixed and parameterized
// gates, their unitaries, analytic parameter derivatives (used by the
// synthesis optimizer), and inverses.
//
// Qubit-ordering convention: within a k-qubit gate matrix, the FIRST qubit
// argument is the most significant bit of the 2^k basis index. For CX the
// first qubit is the control.
package gate

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/linalg"
)

// Spec describes a gate type.
type Spec struct {
	// Name is the canonical lower-case gate name (matches OpenQASM 2.0
	// where a standard name exists).
	Name string
	// Qubits is the number of qubits the gate acts on.
	Qubits int
	// Params is the number of real parameters.
	Params int
	// Build returns the 2^Qubits x 2^Qubits unitary for the parameters.
	Build func(p []float64) *linalg.Matrix
	// Deriv returns dU/dp[i], or nil if the gate has no parameters.
	Deriv func(p []float64, i int) *linalg.Matrix
	// InverseName is the gate that implements the inverse with params
	// negated/remapped by InverseParams. For self-describing cases
	// (for example rz → rz with negated angle) it is the same name.
	InverseName string
	// InverseParams maps parameters to the inverse gate's parameters.
	// nil means negate all parameters (correct for all R-type gates).
	InverseParams func(p []float64) []float64
	// Entangling CNOT-equivalent cost: how many CNOTs this gate counts
	// as in QUEST's CNOT-count metric (0 for one-qubit gates, 1 for CX,
	// 3 for SWAP, ...).
	CNOTCost int
}

var registry = map[string]*Spec{}

// Lookup returns the Spec for a gate name, or an error for unknown gates.
func Lookup(name string) (*Spec, error) {
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("gate: unknown gate %q", name)
	}
	return s, nil
}

// MustLookup is Lookup for gate names known at compile time.
func MustLookup(name string) *Spec {
	s, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names returns all registered gate names (unordered).
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	return out
}

func register(s *Spec) *Spec {
	if _, dup := registry[s.Name]; dup {
		panic("gate: duplicate registration " + s.Name)
	}
	registry[s.Name] = s
	return s
}

func fixed(name string, qubits int, cnotCost int, rows [][]complex128, inverseName string) *Spec {
	m := linalg.FromRows(rows)
	return register(&Spec{
		Name:        name,
		Qubits:      qubits,
		Params:      0,
		Build:       func([]float64) *linalg.Matrix { return m.Copy() },
		InverseName: inverseName,
		CNOTCost:    cnotCost,
	})
}

func e(theta float64) complex128 { return cmplx.Exp(complex(0, theta)) }

// Matrix constructors for the parameterized gates. Exported so tests and
// the synthesizer can build raw matrices without a Spec.

// U3Matrix returns the generic one-qubit rotation
// U3(θ,φ,λ) = [[cos(θ/2), -e^{iλ} sin(θ/2)], [e^{iφ} sin(θ/2), e^{i(φ+λ)} cos(θ/2)]].
func U3Matrix(theta, phi, lambda float64) *linalg.Matrix {
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	return linalg.FromRows([][]complex128{
		{complex(c, 0), -e(lambda) * complex(s, 0)},
		{e(phi) * complex(s, 0), e(phi+lambda) * complex(c, 0)},
	})
}

// RXMatrix returns exp(-iθX/2).
func RXMatrix(theta float64) *linalg.Matrix {
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	return linalg.FromRows([][]complex128{
		{complex(c, 0), complex(0, -s)},
		{complex(0, -s), complex(c, 0)},
	})
}

// RYMatrix returns exp(-iθY/2).
func RYMatrix(theta float64) *linalg.Matrix {
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	return linalg.FromRows([][]complex128{
		{complex(c, 0), complex(-s, 0)},
		{complex(s, 0), complex(c, 0)},
	})
}

// RZMatrix returns exp(-iθZ/2).
func RZMatrix(theta float64) *linalg.Matrix {
	return linalg.FromRows([][]complex128{
		{e(-theta / 2), 0},
		{0, e(theta / 2)},
	})
}

// PhaseMatrix returns diag(1, e^{iλ}).
func PhaseMatrix(lambda float64) *linalg.Matrix {
	return linalg.FromRows([][]complex128{
		{1, 0},
		{0, e(lambda)},
	})
}

// RZZMatrix returns exp(-iθ Z⊗Z /2) (diagonal).
func RZZMatrix(theta float64) *linalg.Matrix {
	m := linalg.New(4, 4)
	m.Set(0, 0, e(-theta/2))
	m.Set(1, 1, e(theta/2))
	m.Set(2, 2, e(theta/2))
	m.Set(3, 3, e(-theta/2))
	return m
}

// RXXMatrix returns exp(-iθ X⊗X /2).
func RXXMatrix(theta float64) *linalg.Matrix {
	c, s := complex(math.Cos(theta/2), 0), complex(0, -math.Sin(theta/2))
	m := linalg.New(4, 4)
	m.Set(0, 0, c)
	m.Set(1, 1, c)
	m.Set(2, 2, c)
	m.Set(3, 3, c)
	m.Set(0, 3, s)
	m.Set(1, 2, s)
	m.Set(2, 1, s)
	m.Set(3, 0, s)
	return m
}

// RYYMatrix returns exp(-iθ Y⊗Y /2).
func RYYMatrix(theta float64) *linalg.Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	m := linalg.New(4, 4)
	m.Set(0, 0, c)
	m.Set(1, 1, c)
	m.Set(2, 2, c)
	m.Set(3, 3, c)
	m.Set(0, 3, -s)
	m.Set(1, 2, s)
	m.Set(2, 1, s)
	m.Set(3, 0, -s)
	return m
}

// CPMatrix returns the controlled-phase gate diag(1,1,1,e^{iλ}).
func CPMatrix(lambda float64) *linalg.Matrix {
	m := linalg.Identity(4)
	m.Set(3, 3, e(lambda))
	return m
}

// CRZMatrix returns the controlled-RZ gate diag(RZ applied when control=1).
func CRZMatrix(theta float64) *linalg.Matrix {
	m := linalg.Identity(4)
	m.Set(2, 2, e(-theta/2))
	m.Set(3, 3, e(theta/2))
	return m
}

func negateParams(p []float64) []float64 {
	q := make([]float64, len(p))
	for i, v := range p {
		q[i] = -v
	}
	return q
}

// Pauli matrices, exported for the noise model and derivative formulas.
var (
	// PauliI is the 2x2 identity.
	PauliI = linalg.Identity(2)
	// PauliX is the bit-flip Pauli matrix.
	PauliX = linalg.FromRows([][]complex128{{0, 1}, {1, 0}})
	// PauliY is the Y Pauli matrix.
	PauliY = linalg.FromRows([][]complex128{{0, complex(0, -1)}, {complex(0, 1), 0}})
	// PauliZ is the phase-flip Pauli matrix.
	PauliZ = linalg.FromRows([][]complex128{{1, 0}, {0, -1}})
)

// rotDeriv returns d/dθ exp(-iθP/2) = (-i/2) P exp(-iθP/2).
func rotDeriv(p *linalg.Matrix, u *linalg.Matrix) *linalg.Matrix {
	return linalg.Scale(complex(0, -0.5), linalg.Mul(p, u))
}

func init() {
	inv := math.Sqrt2 / 2
	i := complex(0, 1)

	fixed("id", 1, 0, [][]complex128{{1, 0}, {0, 1}}, "id")
	fixed("x", 1, 0, [][]complex128{{0, 1}, {1, 0}}, "x")
	fixed("y", 1, 0, [][]complex128{{0, -i}, {i, 0}}, "y")
	fixed("z", 1, 0, [][]complex128{{1, 0}, {0, -1}}, "z")
	fixed("h", 1, 0, [][]complex128{
		{complex(inv, 0), complex(inv, 0)},
		{complex(inv, 0), complex(-inv, 0)},
	}, "h")
	fixed("s", 1, 0, [][]complex128{{1, 0}, {0, i}}, "sdg")
	fixed("sdg", 1, 0, [][]complex128{{1, 0}, {0, -i}}, "s")
	fixed("t", 1, 0, [][]complex128{{1, 0}, {0, e(math.Pi / 4)}}, "tdg")
	fixed("tdg", 1, 0, [][]complex128{{1, 0}, {0, e(-math.Pi / 4)}}, "t")
	fixed("sx", 1, 0, [][]complex128{
		{(1 + i) / 2, (1 - i) / 2},
		{(1 - i) / 2, (1 + i) / 2},
	}, "sxdg")
	fixed("sxdg", 1, 0, [][]complex128{
		{(1 - i) / 2, (1 + i) / 2},
		{(1 + i) / 2, (1 - i) / 2},
	}, "sx")

	// Two-qubit fixed gates. First qubit = most significant bit; for cx
	// the first qubit is the control.
	fixed("cx", 2, 1, [][]complex128{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
	}, "cx")
	fixed("cz", 2, 1, [][]complex128{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 1, 0},
		{0, 0, 0, -1},
	}, "cz")
	fixed("swap", 2, 3, [][]complex128{
		{1, 0, 0, 0},
		{0, 0, 1, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
	}, "swap")
	fixed("ch", 2, 2, [][]complex128{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, complex(inv, 0), complex(inv, 0)},
		{0, 0, complex(inv, 0), complex(-inv, 0)},
	}, "ch")

	// Toffoli: 6 CNOTs in the standard decomposition.
	ccx := linalg.Identity(8)
	ccx.Set(6, 6, 0)
	ccx.Set(7, 7, 0)
	ccx.Set(6, 7, 1)
	ccx.Set(7, 6, 1)
	register(&Spec{
		Name: "ccx", Qubits: 3, Params: 0,
		Build:       func([]float64) *linalg.Matrix { return ccx.Copy() },
		InverseName: "ccx",
		CNOTCost:    6,
	})

	register(&Spec{
		Name: "rx", Qubits: 1, Params: 1,
		Build: func(p []float64) *linalg.Matrix { return RXMatrix(p[0]) },
		Deriv: func(p []float64, _ int) *linalg.Matrix {
			return rotDeriv(PauliX, RXMatrix(p[0]))
		},
		InverseName: "rx", CNOTCost: 0,
	})
	register(&Spec{
		Name: "ry", Qubits: 1, Params: 1,
		Build: func(p []float64) *linalg.Matrix { return RYMatrix(p[0]) },
		Deriv: func(p []float64, _ int) *linalg.Matrix {
			return rotDeriv(PauliY, RYMatrix(p[0]))
		},
		InverseName: "ry", CNOTCost: 0,
	})
	register(&Spec{
		Name: "rz", Qubits: 1, Params: 1,
		Build: func(p []float64) *linalg.Matrix { return RZMatrix(p[0]) },
		Deriv: func(p []float64, _ int) *linalg.Matrix {
			return rotDeriv(PauliZ, RZMatrix(p[0]))
		},
		InverseName: "rz", CNOTCost: 0,
	})
	register(&Spec{
		Name: "p", Qubits: 1, Params: 1,
		Build: func(p []float64) *linalg.Matrix { return PhaseMatrix(p[0]) },
		Deriv: func(p []float64, _ int) *linalg.Matrix {
			m := linalg.New(2, 2)
			m.Set(1, 1, i*e(p[0]))
			return m
		},
		InverseName: "p", CNOTCost: 0,
	})
	register(&Spec{
		Name: "u3", Qubits: 1, Params: 3,
		Build: func(p []float64) *linalg.Matrix { return U3Matrix(p[0], p[1], p[2]) },
		Deriv: u3Deriv, InverseName: "u3",
		InverseParams: func(p []float64) []float64 {
			// U3(θ,φ,λ)^-1 = U3(-θ,-λ,-φ)
			return []float64{-p[0], -p[2], -p[1]}
		},
		CNOTCost: 0,
	})

	zz := linalg.Kron(PauliZ, PauliZ)
	xx := linalg.Kron(PauliX, PauliX)
	yy := linalg.Kron(PauliY, PauliY)
	register(&Spec{
		Name: "rzz", Qubits: 2, Params: 1,
		Build: func(p []float64) *linalg.Matrix { return RZZMatrix(p[0]) },
		Deriv: func(p []float64, _ int) *linalg.Matrix {
			return rotDeriv(zz, RZZMatrix(p[0]))
		},
		InverseName: "rzz", CNOTCost: 2,
	})
	register(&Spec{
		Name: "rxx", Qubits: 2, Params: 1,
		Build: func(p []float64) *linalg.Matrix { return RXXMatrix(p[0]) },
		Deriv: func(p []float64, _ int) *linalg.Matrix {
			return rotDeriv(xx, RXXMatrix(p[0]))
		},
		InverseName: "rxx", CNOTCost: 2,
	})
	register(&Spec{
		Name: "ryy", Qubits: 2, Params: 1,
		Build: func(p []float64) *linalg.Matrix { return RYYMatrix(p[0]) },
		Deriv: func(p []float64, _ int) *linalg.Matrix {
			return rotDeriv(yy, RYYMatrix(p[0]))
		},
		InverseName: "ryy", CNOTCost: 2,
	})
	register(&Spec{
		Name: "cp", Qubits: 2, Params: 1,
		Build: func(p []float64) *linalg.Matrix { return CPMatrix(p[0]) },
		Deriv: func(p []float64, _ int) *linalg.Matrix {
			m := linalg.New(4, 4)
			m.Set(3, 3, i*e(p[0]))
			return m
		},
		InverseName: "cp", CNOTCost: 2,
	})
	register(&Spec{
		Name: "crz", Qubits: 2, Params: 1,
		Build: func(p []float64) *linalg.Matrix { return CRZMatrix(p[0]) },
		Deriv: func(p []float64, _ int) *linalg.Matrix {
			m := linalg.New(4, 4)
			m.Set(2, 2, complex(0, -0.5)*e(-p[0]/2))
			m.Set(3, 3, complex(0, 0.5)*e(p[0]/2))
			return m
		},
		InverseName: "crz", CNOTCost: 2,
	})
}

func u3Deriv(p []float64, k int) *linalg.Matrix {
	theta, phi, lambda := p[0], p[1], p[2]
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	i := complex(0, 1)
	switch k {
	case 0: // d/dθ
		return linalg.FromRows([][]complex128{
			{complex(-s/2, 0), -e(lambda) * complex(c/2, 0)},
			{e(phi) * complex(c/2, 0), e(phi+lambda) * complex(-s/2, 0)},
		})
	case 1: // d/dφ
		return linalg.FromRows([][]complex128{
			{0, 0},
			{i * e(phi) * complex(s, 0), i * e(phi+lambda) * complex(c, 0)},
		})
	case 2: // d/dλ
		return linalg.FromRows([][]complex128{
			{0, -i * e(lambda) * complex(s, 0)},
			{0, i * e(phi+lambda) * complex(c, 0)},
		})
	}
	panic("gate: u3 derivative index out of range")
}

// Inverse returns the gate name and parameters implementing s(p)^-1.
func (s *Spec) Inverse(p []float64) (string, []float64) {
	name := s.InverseName
	if name == "" {
		name = s.Name
	}
	if s.Params == 0 {
		return name, nil
	}
	if s.InverseParams != nil {
		return name, s.InverseParams(p)
	}
	return name, negateParams(p)
}
