package transpile

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/sim"
)

func randomCXCircuit(n, ops int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < ops; i++ {
		switch rng.Intn(3) {
		case 0:
			c.RY(rng.Intn(n), rng.Float64()*2)
		default:
			a, b := distinctPair(n, rng)
			c.CX(a, b)
		}
	}
	return c
}

func TestSabreRoutePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 10; trial++ {
		c := randomCXCircuit(5, 15, rng)
		m := LinearCoupling(5)
		routed, layout, err := SabreRoute(c, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range routed.Ops {
			if len(op.Qubits) == 2 && !m.Adjacent(op.Qubits[0], op.Qubits[1]) {
				t.Fatalf("trial %d: non-adjacent 2q gate %v", trial, op)
			}
		}
		want := sim.Probabilities(c)
		got := PermuteDistribution(sim.Probabilities(routed), layout, 5)
		for k := range want {
			if math.Abs(want[k]-got[k]) > 1e-9 {
				t.Fatalf("trial %d: distribution mismatch at %d", trial, k)
			}
		}
	}
}

func TestSabreRouteWithInitialLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	c := randomCXCircuit(4, 12, rng)
	m := RingCoupling(5)
	initial := ChooseInitialLayout(c, m)
	routed, layout, err := SabreRoute(c, m, initial)
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Probabilities(c)
	got := PermuteDistribution(sim.Probabilities(routed), layout, 4)
	for k := range want {
		if math.Abs(want[k]-got[k]) > 1e-9 {
			t.Fatalf("distribution mismatch at %d", k)
		}
	}
}

func TestSabreRouteNotWorseThanGreedyOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	var sabreTotal, greedyTotal int
	for trial := 0; trial < 12; trial++ {
		c := randomCXCircuit(5, 20, rng)
		m := LinearCoupling(5)
		s, _, err := SabreRoute(c, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		g, _, err := Route(c, m)
		if err != nil {
			t.Fatal(err)
		}
		sabreTotal += s.CNOTCount()
		greedyTotal += g.CNOTCount()
	}
	t.Logf("total CNOT-equivalents over 12 circuits: sabre %d, greedy %d", sabreTotal, greedyTotal)
	if sabreTotal > greedyTotal {
		t.Errorf("lookahead router worse than greedy: %d vs %d", sabreTotal, greedyTotal)
	}
}

func TestSabreRouteValidation(t *testing.T) {
	c := circuit.New(3)
	c.CCX(0, 1, 2)
	if _, _, err := SabreRoute(c, LinearCoupling(3), nil); err == nil {
		t.Error("3-qubit gate accepted")
	}
	c2 := circuit.New(6)
	c2.H(0)
	if _, _, err := SabreRoute(c2, LinearCoupling(3), nil); err == nil {
		t.Error("oversized circuit accepted")
	}
	c3 := circuit.New(2)
	c3.CX(0, 1)
	if _, _, err := SabreRoute(c3, LinearCoupling(3), []int{0, 0}); err == nil {
		t.Error("duplicate initial placement accepted")
	}
}

func TestSabreRouteOnGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	c := randomCXCircuit(6, 18, rng)
	m := GridCoupling(2, 3)
	routed, layout, err := SabreRoute(c, m, ChooseInitialLayout(c, m))
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Probabilities(c)
	got := PermuteDistribution(sim.Probabilities(routed), layout, 6)
	for k := range want {
		if math.Abs(want[k]-got[k]) > 1e-9 {
			t.Fatalf("grid distribution mismatch at %d", k)
		}
	}
}
