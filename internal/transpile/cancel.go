package transpile

import (
	"math/cmplx"

	"repro/internal/circuit"
)

// CancelCX removes pairs of identical CNOTs separated only by gates that
// commute with the CNOT: diagonal single-qubit gates on the control and
// X-axis single-qubit gates on the target.
func CancelCX(c *circuit.Circuit) *circuit.Circuit {
	ops := make([]circuit.Op, len(c.Ops))
	for i, op := range c.Ops {
		ops[i] = op.Clone()
	}
	removed := make([]bool, len(ops))

	for i := 0; i < len(ops); i++ {
		if removed[i] || ops[i].Name != "cx" {
			continue
		}
		ctrl, tgt := ops[i].Qubits[0], ops[i].Qubits[1]
	scan:
		for j := i + 1; j < len(ops); j++ {
			if removed[j] {
				continue
			}
			op := ops[j]
			touchesCtrl, touchesTgt := touches(op, ctrl), touches(op, tgt)
			if !touchesCtrl && !touchesTgt {
				continue
			}
			if op.Name == "cx" && op.Qubits[0] == ctrl && op.Qubits[1] == tgt {
				removed[i], removed[j] = true, true
				break scan
			}
			// Gates that commute with this CX may be skipped over.
			if len(op.Qubits) == 1 {
				if touchesCtrl && commutesWithControl(op) {
					continue
				}
				if touchesTgt && commutesWithTarget(op) {
					continue
				}
			}
			break scan
		}
	}

	out := circuit.New(c.NumQubits)
	for i, op := range ops {
		if !removed[i] {
			out.Ops = append(out.Ops, op)
		}
	}
	return out
}

func touches(op circuit.Op, q int) bool {
	for _, x := range op.Qubits {
		if x == q {
			return true
		}
	}
	return false
}

// commutesWithControl reports whether a one-qubit gate commutes with a CX
// whose control it sits on (true for diagonal gates).
func commutesWithControl(op circuit.Op) bool {
	switch op.Name {
	case "z", "s", "sdg", "t", "tdg", "rz", "p", "id":
		return true
	case "u3":
		// Diagonal iff θ ≈ 0.
		m := matrixOf(op)
		return cmplx.Abs(m.At(0, 1)) < 1e-12 && cmplx.Abs(m.At(1, 0)) < 1e-12
	}
	return false
}

// commutesWithTarget reports whether a one-qubit gate commutes with a CX
// whose target it sits on (true for X-axis gates).
func commutesWithTarget(op circuit.Op) bool {
	switch op.Name {
	case "x", "rx", "sx", "sxdg", "id":
		return true
	}
	return false
}

// DropIdentities removes gates whose matrix is the identity up to global
// phase (for example rz(0) or u3(0,0,0)).
func DropIdentities(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.NumQubits)
	for _, op := range c.Ops {
		if len(op.Qubits) == 1 {
			if m := matrixOf(op); isIdentityUpToPhase(m, 1e-8) {
				continue
			}
		}
		out.Ops = append(out.Ops, op.Clone())
	}
	return out
}

// Optimize applies the full Qiskit-style pass pipeline: lowering to
// {u3, cx}, two-qubit block resynthesis (the KAK-style consolidation of
// Qiskit level 3), then iterated CX cancellation, single-qubit fusion and
// identity removal until a fixed point.
func Optimize(c *circuit.Circuit) *circuit.Circuit {
	cur := OptimizeLight(Resynthesize2Q(Lower(c)))
	return cur
}

// OptimizeLight runs only the cheap local passes (CX cancellation,
// single-qubit fusion, identity removal) to a fixed point, without the
// numerical two-qubit resynthesis.
func OptimizeLight(c *circuit.Circuit) *circuit.Circuit {
	cur := Lower(c)
	for i := 0; i < 20; i++ {
		next := DropIdentities(FuseSingleQubit(CancelCX(cur)))
		if next.Size() == cur.Size() {
			return next
		}
		cur = next
	}
	return cur
}
