package transpile

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// SabreRoute maps a circuit onto the coupling map with a SABRE-style
// lookahead heuristic: when the front layer of two-qubit gates is blocked,
// it inserts the SWAP that minimizes the summed distance of the front
// layer plus a discounted extended window of upcoming gates, instead of
// greedily walking one operand toward the other like Route. initial is an
// optional starting layout (nil = identity). Returns the physical circuit
// and the final logical→physical layout.
func SabreRoute(c *circuit.Circuit, m *CouplingMap, initial []int) (*circuit.Circuit, []int, error) {
	if c.NumQubits > m.NumQubits {
		return nil, nil, fmt.Errorf("transpile: circuit has %d qubits, device has %d", c.NumQubits, m.NumQubits)
	}
	for _, op := range c.Ops {
		if len(op.Qubits) > 2 {
			return nil, nil, fmt.Errorf("transpile: SabreRoute requires a ≤2-qubit basis, got %s", op.Name)
		}
	}
	if initial != nil && len(initial) != c.NumQubits {
		return nil, nil, fmt.Errorf("transpile: initial layout has %d entries, want %d", len(initial), c.NumQubits)
	}

	layout := make([]int, c.NumQubits)
	holder := make([]int, m.NumQubits)
	for i := range holder {
		holder[i] = -1
	}
	for l := 0; l < c.NumQubits; l++ {
		p := l
		if initial != nil {
			p = initial[l]
		}
		if p < 0 || p >= m.NumQubits || holder[p] != -1 {
			return nil, nil, fmt.Errorf("transpile: invalid initial layout (qubit %d -> %d)", l, p)
		}
		layout[l] = p
		holder[p] = l
	}

	// Dependency structure: op i is ready when, for each of its qubits,
	// it is that qubit's next pending op.
	nextOn := make([]int, c.NumQubits) // per-qubit cursor into perQubit lists
	perQubit := make([][]int, c.NumQubits)
	for i, op := range c.Ops {
		for _, q := range op.Qubits {
			perQubit[q] = append(perQubit[q], i)
		}
	}
	done := make([]bool, len(c.Ops))
	ready := func(i int) bool {
		for _, q := range c.Ops[i].Qubits {
			if perQubit[q][nextOn[q]] != i {
				return false
			}
		}
		return true
	}
	complete := func(i int) {
		done[i] = true
		for _, q := range c.Ops[i].Qubits {
			nextOn[q]++
		}
	}

	out := circuit.New(m.NumQubits)
	emit := func(op circuit.Op) error {
		qs := make([]int, len(op.Qubits))
		for j, q := range op.Qubits {
			qs[j] = layout[q]
		}
		return out.Append(op.Name, qs, op.Params)
	}
	// moveSwap updates the layout bookkeeping only; swapPhys also emits
	// the gate. Candidate evaluation uses moveSwap so trial swaps never
	// reach the output circuit.
	moveSwap := func(pa, pb int) {
		la, lb := holder[pa], holder[pb]
		holder[pa], holder[pb] = lb, la
		if la >= 0 {
			layout[la] = pb
		}
		if lb >= 0 {
			layout[lb] = pa
		}
	}
	swapPhys := func(pa, pb int) {
		out.Swap(pa, pb)
		moveSwap(pa, pb)
	}

	remaining := len(c.Ops)
	const (
		lookahead   = 12  // extended-window size
		extWeight   = 0.5 // discount for extended-window gates
		maxStallFix = 1 << 16
	)
	guard := 0
	stalled := 0              // swaps since an op last executed
	lastSwap := [2]int{-1, 0} // previous swap, to forbid immediate reversal
	decay := make([]float64, m.NumQubits)
	for i := range decay {
		decay[i] = 1
	}
	for remaining > 0 {
		if guard++; guard > maxStallFix {
			return nil, nil, fmt.Errorf("transpile: SabreRoute failed to make progress")
		}
		// Execute everything executable.
		progressed := true
		for progressed {
			progressed = false
			for i, op := range c.Ops {
				if done[i] || !ready(i) {
					continue
				}
				if len(op.Qubits) == 2 && !m.Adjacent(layout[op.Qubits[0]], layout[op.Qubits[1]]) {
					continue
				}
				if err := emit(op); err != nil {
					return nil, nil, err
				}
				complete(i)
				remaining--
				progressed = true
				stalled = 0
				lastSwap = [2]int{-1, 0}
				for j := range decay {
					decay[j] = 1
				}
			}
		}
		if remaining == 0 {
			break
		}

		// Front layer: ready-but-blocked two-qubit gates. Extended
		// window: the next `lookahead` pending two-qubit gates.
		var front, extended [][2]int
		for i, op := range c.Ops {
			if done[i] || len(op.Qubits) != 2 {
				continue
			}
			pair := [2]int{op.Qubits[0], op.Qubits[1]}
			if ready(i) {
				front = append(front, pair)
			} else if len(extended) < lookahead {
				extended = append(extended, pair)
			}
		}
		if len(front) == 0 {
			return nil, nil, fmt.Errorf("transpile: SabreRoute deadlock (disconnected device?)")
		}

		// Anti-livelock: if the heuristic has inserted many swaps without
		// unblocking anything, resolve the first front gate greedily (a
		// shortest-path walk guarantees progress).
		if stalled > 2*m.NumQubits {
			g := front[0]
			for m.Distance(layout[g[0]], layout[g[1]]) > 1 {
				pa := layout[g[0]]
				best := -1
				bestD := m.Distance(pa, layout[g[1]])
				for _, nb := range m.adj[pa] {
					if d := m.Distance(nb, layout[g[1]]); d < bestD {
						best, bestD = nb, d
					}
				}
				if best == -1 {
					return nil, nil, fmt.Errorf("transpile: SabreRoute deadlock (disconnected device?)")
				}
				swapPhys(pa, best)
			}
			stalled = 0
			lastSwap = [2]int{-1, 0}
			continue
		}

		score := func() float64 {
			var f float64
			for _, g := range front {
				f += float64(m.Distance(layout[g[0]], layout[g[1]]))
			}
			f /= float64(len(front))
			if len(extended) > 0 {
				var e float64
				for _, g := range extended {
					e += float64(m.Distance(layout[g[0]], layout[g[1]]))
				}
				f += extWeight * e / float64(len(extended))
			}
			return f
		}

		// Candidate SWAPs: every edge touching a front-layer qubit.
		frontPhys := map[int]bool{}
		for _, g := range front {
			frontPhys[layout[g[0]]] = true
			frontPhys[layout[g[1]]] = true
		}
		bestScore := 0.0
		bestEdge := [2]int{-1, -1}
		first := true
		for _, e := range m.Edges {
			if !frontPhys[e[0]] && !frontPhys[e[1]] {
				continue
			}
			if e == lastSwap || (e[0] == lastSwap[1] && e[1] == lastSwap[0]) {
				continue // forbid immediately undoing the previous swap
			}
			moveSwap(e[0], e[1])
			s := score() * math.Max(decay[e[0]], decay[e[1]])
			moveSwap(e[0], e[1]) // undo
			if first || s < bestScore {
				bestScore = s
				bestEdge = e
				first = false
			}
		}
		if bestEdge[0] == -1 {
			// Only the reversal is available; take it and let the
			// anti-livelock path resolve the oscillation.
			bestEdge = lastSwap
		}
		swapPhys(bestEdge[0], bestEdge[1])
		decay[bestEdge[0]] += 0.3
		decay[bestEdge[1]] += 0.3
		lastSwap = bestEdge
		stalled++
	}
	return out, layout, nil
}
