package transpile

import (
	"repro/internal/circuit"
	"repro/internal/kak"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/synth"
)

// Resynthesize2Q collects maximal two-qubit runs and resynthesizes each
// run down to its provably minimal CNOT count: the Makhlin-invariant
// classification (package kak) determines how many CNOTs (0-3) the run's
// unitary requires, and the numerical synthesizer is asked for exactly
// that depth. This mirrors Qiskit level-3's Collect2qBlocks +
// ConsolidateBlocks + KAK-based UnitarySynthesis pass and is where the
// Qiskit baseline's CNOT reductions on Trotterized circuits come from.
// Blocks that fail to resynthesize exactly are kept unchanged, so the
// output always implements the input up to global phase.
func Resynthesize2Q(c *circuit.Circuit) *circuit.Circuit {
	blocks, err := partition.Scan(c, 2)
	if err != nil {
		// A gate wider than 2 qubits is present; lower first.
		return c.Clone()
	}
	out := circuit.New(c.NumQubits)
	for _, b := range blocks {
		cnots := b.Circuit.CNOTCount()
		if cnots == 0 || len(b.Qubits) != 2 {
			out.MustAppendCircuit(b.Circuit, b.Qubits)
			continue
		}
		target := sim.Unitary(b.Circuit)
		min := kak.MinCNOTs(target)
		if min >= cnots {
			out.MustAppendCircuit(b.Circuit, b.Qubits)
			continue
		}
		maxCNOTs := min
		if maxCNOTs == 0 {
			maxCNOTs = -1 // rotation-only template
		}
		res, err := synth.Synthesize(target, synth.Options{
			Threshold: 1e-9,
			MaxCNOTs:  maxCNOTs,
			Beam:      1,
			Restarts:  4,
			Seed:      1,
		})
		if err != nil || res.Best.Distance > 5e-6 || res.Best.CNOTs >= cnots {
			out.MustAppendCircuit(b.Circuit, b.Qubits)
			continue
		}
		out.MustAppendCircuit(res.Best.Circuit, b.Qubits)
	}
	return out
}
