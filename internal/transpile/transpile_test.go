package transpile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/algos"
	"repro/internal/circuit"
	"repro/internal/gate"
	"repro/internal/linalg"
	"repro/internal/sim"
)

// assertSameUpToPhase compares two circuits by HS distance (phase
// invariant). The tolerance absorbs the sqrt amplification near zero.
func assertSameUpToPhase(t *testing.T, a, b *circuit.Circuit, context string) {
	t.Helper()
	if d := linalg.HSDistance(sim.Unitary(a), sim.Unitary(b)); d > 1e-4 {
		t.Errorf("%s: circuits differ, HS distance %g", context, d)
	}
}

func randomRichCircuit(n, ops int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	names1 := []string{"h", "x", "y", "z", "s", "t", "sdg", "tdg", "sx"}
	for i := 0; i < ops; i++ {
		switch rng.Intn(8) {
		case 0:
			c.MustAppend(names1[rng.Intn(len(names1))], []int{rng.Intn(n)}, nil)
		case 1:
			c.RZ(rng.Intn(n), rng.Float64()*4-2)
		case 2:
			c.RY(rng.Intn(n), rng.Float64()*4-2)
		case 3:
			c.U3(rng.Intn(n), rng.Float64(), rng.Float64(), rng.Float64())
		case 4, 5:
			a, b := distinctPair(n, rng)
			c.CX(a, b)
		case 6:
			a, b := distinctPair(n, rng)
			c.RZZ(a, b, rng.Float64()*2-1)
		case 7:
			a, b := distinctPair(n, rng)
			c.Swap(a, b)
		}
	}
	return c
}

func distinctPair(n int, rng *rand.Rand) (int, int) {
	a := rng.Intn(n)
	b := rng.Intn(n)
	for b == a {
		b = rng.Intn(n)
	}
	return a, b
}

func TestLowerEveryGatePreservesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, name := range gate.Names() {
		s := gate.MustLookup(name)
		c := circuit.New(s.Qubits)
		p := make([]float64, s.Params)
		for i := range p {
			p[i] = rng.Float64()*4 - 2
		}
		qs := make([]int, s.Qubits)
		for i := range qs {
			qs[i] = i
		}
		c.MustAppend(name, qs, p)
		lowered := Lower(c)
		assertSameUpToPhase(t, c, lowered, "lower "+name)
		for _, op := range lowered.Ops {
			if op.Name != "u3" && op.Name != "cx" {
				t.Errorf("Lower(%s) emitted %s", name, op.Name)
			}
		}
	}
}

func TestZYZAnglesReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		u := linalg.RandomUnitary(2, rng)
		theta, phi, lambda := ZYZAngles(u)
		v := gate.U3Matrix(theta, phi, lambda)
		if d := linalg.HSDistance(u, v); d > 1e-6 {
			t.Fatalf("trial %d: ZYZ reconstruction distance %g", trial, d)
		}
	}
}

func TestZYZAnglesEdgeCases(t *testing.T) {
	for _, m := range []*linalg.Matrix{
		gate.PauliX, gate.PauliY, gate.PauliZ, linalg.Identity(2),
		gate.RZMatrix(0.7), gate.RYMatrix(math.Pi),
	} {
		theta, phi, lambda := ZYZAngles(m)
		v := gate.U3Matrix(theta, phi, lambda)
		if d := linalg.HSDistance(m, v); d > 1e-6 {
			t.Errorf("edge case reconstruction distance %g for\n%v", d, m)
		}
	}
}

func TestFuseSingleQubitMergesRuns(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	c.T(0)
	c.S(0)
	c.RZ(0, 0.3)
	c.X(1)
	fused := FuseSingleQubit(c)
	if got := fused.Size(); got != 2 {
		t.Errorf("fused size = %d, want 2 (one u3 per qubit)", got)
	}
	assertSameUpToPhase(t, c, fused, "fusion")
}

func TestFuseSingleQubitIdentityRunDropped(t *testing.T) {
	c := circuit.New(1)
	c.H(0)
	c.H(0)
	fused := FuseSingleQubit(c)
	if fused.Size() != 0 {
		t.Errorf("H·H not dropped: %v", fused)
	}
}

func TestFuseBlockedByTwoQubitGate(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	c.CX(0, 1)
	c.H(0)
	fused := FuseSingleQubit(c)
	if fused.Size() != 3 {
		t.Errorf("fusion across CX happened: %v", fused)
	}
	assertSameUpToPhase(t, c, fused, "fusion-blocked")
}

func TestCancelCXAdjacent(t *testing.T) {
	c := circuit.New(2)
	c.CX(0, 1)
	c.CX(0, 1)
	out := CancelCX(c)
	if out.Size() != 0 {
		t.Errorf("adjacent CX pair not cancelled: %v", out)
	}
}

func TestCancelCXAcrossCommutingGates(t *testing.T) {
	c := circuit.New(2)
	c.CX(0, 1)
	c.RZ(0, 0.5) // diagonal on control: commutes
	c.RX(1, 0.7) // X-axis on target: commutes
	c.CX(0, 1)
	out := CancelCX(c)
	if out.CNOTCount() != 0 {
		t.Errorf("CX pair across commuting gates not cancelled: %v", out)
	}
	assertSameUpToPhase(t, c, out, "commuting cancel")
}

func TestCancelCXBlockedByNonCommuting(t *testing.T) {
	c := circuit.New(2)
	c.CX(0, 1)
	c.H(1) // does not commute with target
	c.CX(0, 1)
	out := CancelCX(c)
	if out.CNOTCount() != 2 {
		t.Errorf("CX pair wrongly cancelled across H: %v", out)
	}
}

func TestDropIdentities(t *testing.T) {
	c := circuit.New(1)
	c.RZ(0, 0)
	c.U3(0, 0, 0, 0)
	c.RZ(0, 0.5)
	out := DropIdentities(c)
	if out.Size() != 1 {
		t.Errorf("DropIdentities size = %d, want 1", out.Size())
	}
}

func TestOptimizeReducesRedundantCircuit(t *testing.T) {
	c := circuit.New(3)
	c.H(0)
	c.H(0)
	c.CX(0, 1)
	c.CX(0, 1)
	c.T(2)
	c.Tdg(2)
	out := Optimize(c)
	if out.Size() != 0 {
		t.Errorf("Optimize left %d ops on an identity circuit: %v", out.Size(), out)
	}
}

func TestOptimizePreservesUnitaryOnBenchmarks(t *testing.T) {
	for _, name := range algos.Names() {
		c, err := algos.Generate(name, 5)
		if err != nil {
			t.Fatal(err)
		}
		if c.NumQubits > 6 {
			continue
		}
		out := Optimize(c)
		assertSameUpToPhase(t, c, out, "optimize "+name)
		if out.CNOTCount() > Lower(c).CNOTCount() {
			t.Errorf("%s: Optimize increased CNOTs %d -> %d", name, Lower(c).CNOTCount(), out.CNOTCount())
		}
	}
}

func TestPropOptimizePreservesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomRichCircuit(3, 25, r)
		out := Optimize(c)
		return linalg.HSDistance(sim.Unitary(c), sim.Unitary(out)) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestRouteOnLinearChain(t *testing.T) {
	// cx(0,2) on a 3-qubit chain needs routing.
	c := circuit.New(3)
	c.CX(0, 2)
	m := LinearCoupling(3)
	routed, layout, err := Route(c, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range routed.Ops {
		if len(op.Qubits) == 2 && !m.Adjacent(op.Qubits[0], op.Qubits[1]) {
			t.Errorf("routed circuit has non-adjacent 2q gate: %v", op)
		}
	}
	if len(layout) != 3 {
		t.Fatalf("layout length %d", len(layout))
	}
}

func TestRoutePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		c := circuit.New(4)
		for i := 0; i < 12; i++ {
			switch rng.Intn(3) {
			case 0:
				c.RY(rng.Intn(4), rng.Float64()*2)
			default:
				a, b := distinctPair(4, rng)
				c.CX(a, b)
			}
		}
		m := LinearCoupling(4)
		routed, layout, err := Route(c, m)
		if err != nil {
			t.Fatal(err)
		}
		pLogical := sim.Probabilities(c)
		pPhys := sim.Probabilities(routed)
		got := PermuteDistribution(pPhys, layout, 4)
		for k := range pLogical {
			if math.Abs(pLogical[k]-got[k]) > 1e-9 {
				t.Fatalf("trial %d: distribution mismatch at %d: %g vs %g",
					trial, k, pLogical[k], got[k])
			}
		}
	}
}

func TestRouteRejectsTooManyQubits(t *testing.T) {
	c := circuit.New(6)
	c.H(0)
	if _, _, err := Route(c, LinearCoupling(3)); err == nil {
		t.Error("Route accepted oversized circuit")
	}
}

func TestRouteRejectsWideGates(t *testing.T) {
	c := circuit.New(3)
	c.CCX(0, 1, 2)
	if _, _, err := Route(c, LinearCoupling(3)); err == nil {
		t.Error("Route accepted a 3-qubit gate")
	}
}

func TestPermuteDistributionIdentity(t *testing.T) {
	p := []float64{0.1, 0.2, 0.3, 0.4}
	got := PermuteDistribution(p, []int{0, 1}, 2)
	for i := range p {
		if got[i] != p[i] {
			t.Errorf("identity permutation changed distribution: %v", got)
		}
	}
}

func TestPermuteDistributionSwap(t *testing.T) {
	// logical 0 on physical 1 and vice versa: basis 01 <-> 10.
	p := []float64{0, 1, 0, 0} // physical |01> (phys qubit 0 = 1)
	got := PermuteDistribution(p, []int{1, 0}, 2)
	if got[2] != 1 { // logical qubit 1 = 1 → index 2
		t.Errorf("swap permutation wrong: %v", got)
	}
}

func TestCouplingDistance(t *testing.T) {
	m := LinearCoupling(5)
	if m.Distance(0, 4) != 4 || m.Distance(2, 2) != 0 || !m.Adjacent(1, 2) {
		t.Error("coupling distances wrong")
	}
}

func TestResynthesize2QReducesTrotterPair(t *testing.T) {
	// rxx+ryy+rzz on one pair lowers to 6 CNOTs; KAK needs at most 3.
	c := circuit.New(2)
	c.RXX(0, 1, 0.7)
	c.RYY(0, 1, 0.5)
	c.RZZ(0, 1, 0.3)
	lowered := Lower(c)
	if lowered.CNOTCount() != 6 {
		t.Fatalf("lowered CNOTs = %d, want 6", lowered.CNOTCount())
	}
	out := Resynthesize2Q(lowered)
	if out.CNOTCount() > 3 {
		t.Errorf("resynthesized CNOTs = %d, want <= 3", out.CNOTCount())
	}
	assertSameUpToPhase(t, c, out, "resynth2q")
}

func TestResynthesize2QKeepsCheapBlocks(t *testing.T) {
	c := circuit.New(3)
	c.H(0)
	c.CX(0, 1)
	c.CX(1, 2)
	out := Resynthesize2Q(c)
	assertSameUpToPhase(t, c, out, "resynth2q cheap")
	if out.CNOTCount() > c.CNOTCount() {
		t.Errorf("resynthesis increased CNOTs: %d -> %d", c.CNOTCount(), out.CNOTCount())
	}
}

func TestOptimizeReducesHeisenbergStep(t *testing.T) {
	c, err := algos.Generate("heisenberg", 4)
	if err != nil {
		t.Fatal(err)
	}
	base := c.CNOTCount()
	out := Optimize(c)
	if out.CNOTCount() >= base {
		t.Errorf("Optimize on heisenberg-4: %d -> %d CNOTs, want a reduction", base, out.CNOTCount())
	}
	assertSameUpToPhase(t, c, out, "optimize heisenberg")
	t.Logf("heisenberg-4 Qiskit-style: %d -> %d CNOTs (%.0f%%)",
		base, out.CNOTCount(), 100*float64(base-out.CNOTCount())/float64(base))
}

func TestRingAndGridCoupling(t *testing.T) {
	r := RingCoupling(5)
	if r.Distance(0, 4) != 1 { // wraps around
		t.Errorf("ring distance(0,4) = %d, want 1", r.Distance(0, 4))
	}
	if r.Distance(0, 2) != 2 {
		t.Errorf("ring distance(0,2) = %d, want 2", r.Distance(0, 2))
	}
	g := GridCoupling(2, 3)
	if g.NumQubits != 6 || g.Distance(0, 5) != 3 {
		t.Errorf("grid: qubits=%d d(0,5)=%d", g.NumQubits, g.Distance(0, 5))
	}
}

func TestChooseInitialLayoutPlacesPartnersAdjacent(t *testing.T) {
	// Logical 0 and 3 interact heavily; a good initial layout puts them
	// next to each other on the chain even though |0-3| = 3 hops in the
	// trivial layout.
	c := circuit.New(4)
	for i := 0; i < 10; i++ {
		c.CX(0, 3)
	}
	m := LinearCoupling(4)
	layout := ChooseInitialLayout(c, m)
	if d := m.Distance(layout[0], layout[3]); d != 1 {
		t.Errorf("initial layout places partners %d hops apart: %v", d, layout)
	}
}

func TestRouteWithLayoutReducesSwaps(t *testing.T) {
	c := circuit.New(4)
	for i := 0; i < 6; i++ {
		c.CX(0, 3)
	}
	m := LinearCoupling(4)
	trivial, _, err := Route(c, m)
	if err != nil {
		t.Fatal(err)
	}
	smart, _, err := RouteWithLayout(c, m, ChooseInitialLayout(c, m))
	if err != nil {
		t.Fatal(err)
	}
	if smart.CNOTCount() >= trivial.CNOTCount() {
		t.Errorf("initial layout did not help: trivial %d, smart %d CNOT-equivalents",
			trivial.CNOTCount(), smart.CNOTCount())
	}
}

func TestRouteWithLayoutPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 8; trial++ {
		c := circuit.New(4)
		for i := 0; i < 12; i++ {
			switch rng.Intn(3) {
			case 0:
				c.RY(rng.Intn(4), rng.Float64()*2)
			default:
				a, b := distinctPair(4, rng)
				c.CX(a, b)
			}
		}
		m := RingCoupling(5)
		initial := ChooseInitialLayout(c, m)
		routed, layout, err := RouteWithLayout(c, m, initial)
		if err != nil {
			t.Fatal(err)
		}
		pLogical := sim.Probabilities(c)
		got := PermuteDistribution(sim.Probabilities(routed), layout, 4)
		for k := range pLogical {
			if math.Abs(pLogical[k]-got[k]) > 1e-9 {
				t.Fatalf("trial %d: distribution mismatch at %d", trial, k)
			}
		}
	}
}

func TestRouteWithLayoutValidation(t *testing.T) {
	c := circuit.New(2)
	c.CX(0, 1)
	m := LinearCoupling(3)
	if _, _, err := RouteWithLayout(c, m, []int{0}); err == nil {
		t.Error("short layout accepted")
	}
	if _, _, err := RouteWithLayout(c, m, []int{0, 0}); err == nil {
		t.Error("duplicate placement accepted")
	}
	if _, _, err := RouteWithLayout(c, m, []int{0, 9}); err == nil {
		t.Error("out-of-range placement accepted")
	}
}
