// Package transpile implements the "Qiskit" comparison baseline of the
// paper's evaluation: lowering to the {u3, cx} basis, single-qubit gate
// fusion (ZYZ resynthesis), adjacent- and commutation-aware CNOT
// cancellation, identity removal, and greedy SWAP routing onto a hardware
// coupling map.
package transpile

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// Lower rewrites the circuit into the {u3, cx} basis. Multi-qubit gates
// are expanded with their standard decompositions. The result is equal to
// the input up to global phase.
func Lower(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.NumQubits)
	for _, op := range c.Ops {
		lowerOp(out, op)
	}
	return out
}

func lowerOp(out *circuit.Circuit, op circuit.Op) {
	q := op.Qubits
	p := op.Params
	u3 := func(q int, t, f, l float64) { out.U3(q, t, f, l) }
	switch op.Name {
	case "cx":
		out.CX(q[0], q[1])
	case "u3":
		u3(q[0], p[0], p[1], p[2])
	case "id":
		// dropped
	case "x":
		u3(q[0], math.Pi, 0, math.Pi)
	case "y":
		u3(q[0], math.Pi, math.Pi/2, math.Pi/2)
	case "z":
		u3(q[0], 0, 0, math.Pi)
	case "h":
		u3(q[0], math.Pi/2, 0, math.Pi)
	case "s":
		u3(q[0], 0, 0, math.Pi/2)
	case "sdg":
		u3(q[0], 0, 0, -math.Pi/2)
	case "t":
		u3(q[0], 0, 0, math.Pi/4)
	case "tdg":
		u3(q[0], 0, 0, -math.Pi/4)
	case "sx":
		u3(q[0], math.Pi/2, -math.Pi/2, math.Pi/2)
	case "sxdg":
		u3(q[0], math.Pi/2, math.Pi/2, -math.Pi/2)
	case "rx":
		u3(q[0], p[0], -math.Pi/2, math.Pi/2)
	case "ry":
		u3(q[0], p[0], 0, 0)
	case "rz", "p":
		u3(q[0], 0, 0, p[0])
	case "cz":
		u3(q[1], math.Pi/2, 0, math.Pi)
		out.CX(q[0], q[1])
		u3(q[1], math.Pi/2, 0, math.Pi)
	case "swap":
		out.CX(q[0], q[1])
		out.CX(q[1], q[0])
		out.CX(q[0], q[1])
	case "rzz":
		out.CX(q[0], q[1])
		u3(q[1], 0, 0, p[0])
		out.CX(q[0], q[1])
	case "rxx":
		u3(q[0], math.Pi/2, 0, math.Pi)
		u3(q[1], math.Pi/2, 0, math.Pi)
		out.CX(q[0], q[1])
		u3(q[1], 0, 0, p[0])
		out.CX(q[0], q[1])
		u3(q[0], math.Pi/2, 0, math.Pi)
		u3(q[1], math.Pi/2, 0, math.Pi)
	case "ryy":
		u3(q[0], math.Pi/2, -math.Pi/2, math.Pi/2)
		u3(q[1], math.Pi/2, -math.Pi/2, math.Pi/2)
		out.CX(q[0], q[1])
		u3(q[1], 0, 0, p[0])
		out.CX(q[0], q[1])
		u3(q[0], -math.Pi/2, -math.Pi/2, math.Pi/2)
		u3(q[1], -math.Pi/2, -math.Pi/2, math.Pi/2)
	case "cp":
		u3(q[0], 0, 0, p[0]/2)
		out.CX(q[0], q[1])
		u3(q[1], 0, 0, -p[0]/2)
		out.CX(q[0], q[1])
		u3(q[1], 0, 0, p[0]/2)
	case "crz":
		u3(q[1], 0, 0, p[0]/2)
		out.CX(q[0], q[1])
		u3(q[1], 0, 0, -p[0]/2)
		out.CX(q[0], q[1])
	case "ch":
		u3(q[1], 0, 0, math.Pi/2)       // s
		u3(q[1], math.Pi/2, 0, math.Pi) // h
		u3(q[1], 0, 0, math.Pi/4)       // t
		out.CX(q[0], q[1])
		u3(q[1], 0, 0, -math.Pi/4)      // tdg
		u3(q[1], math.Pi/2, 0, math.Pi) // h
		u3(q[1], 0, 0, -math.Pi/2)      // sdg
	case "ccx":
		c1, c2, tg := q[0], q[1], q[2]
		u3(tg, math.Pi/2, 0, math.Pi) // h
		out.CX(c2, tg)
		u3(tg, 0, 0, -math.Pi/4) // tdg
		out.CX(c1, tg)
		u3(tg, 0, 0, math.Pi/4) // t
		out.CX(c2, tg)
		u3(tg, 0, 0, -math.Pi/4) // tdg
		out.CX(c1, tg)
		u3(c2, 0, 0, math.Pi/4)       // t
		u3(tg, 0, 0, math.Pi/4)       // t
		u3(tg, math.Pi/2, 0, math.Pi) // h
		out.CX(c1, c2)
		u3(c1, 0, 0, math.Pi/4)  // t
		u3(c2, 0, 0, -math.Pi/4) // tdg
		out.CX(c1, c2)
	default:
		panic(fmt.Sprintf("transpile: no lowering for gate %q", op.Name))
	}
}
