package transpile

import (
	"sort"

	"repro/internal/circuit"
)

// RingCoupling returns the cycle topology 0-1-...-(n-1)-0.
func RingCoupling(n int) *CouplingMap {
	edges := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return NewCouplingMap(n, edges)
}

// GridCoupling returns a rows x cols nearest-neighbor grid topology.
func GridCoupling(rows, cols int) *CouplingMap {
	var edges [][2]int
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	return NewCouplingMap(rows*cols, edges)
}

// ChooseInitialLayout picks a starting logical→physical assignment that
// places strongly interacting logical qubits on adjacent physical qubits:
// logical qubits are visited in order of two-qubit-gate degree and each is
// placed as close as possible to its already-placed interaction partners
// (a greedy variant of Qiskit's dense layout).
func ChooseInitialLayout(c *circuit.Circuit, m *CouplingMap) []int {
	n := c.NumQubits
	if n > m.NumQubits {
		// Oversized circuit: return the identity layout and let the
		// router report the proper error.
		layout := make([]int, n)
		for i := range layout {
			layout[i] = i
		}
		return layout
	}
	// Interaction weights between logical qubits.
	weight := make([][]int, n)
	for i := range weight {
		weight[i] = make([]int, n)
	}
	degree := make([]int, n)
	for _, op := range c.Ops {
		if len(op.Qubits) != 2 {
			continue
		}
		a, b := op.Qubits[0], op.Qubits[1]
		weight[a][b]++
		weight[b][a]++
		degree[a]++
		degree[b]++
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return degree[order[i]] > degree[order[j]] })

	// Physical candidates ordered by connectivity (denser first).
	physDegree := make([]int, m.NumQubits)
	for _, e := range m.Edges {
		physDegree[e[0]]++
		physDegree[e[1]]++
	}
	physOrder := make([]int, m.NumQubits)
	for i := range physOrder {
		physOrder[i] = i
	}
	sort.SliceStable(physOrder, func(i, j int) bool {
		return physDegree[physOrder[i]] > physDegree[physOrder[j]]
	})

	layout := make([]int, n) // logical -> physical
	for i := range layout {
		layout[i] = -1
	}
	used := make([]bool, m.NumQubits)

	place := func(l, p int) {
		layout[l] = p
		used[p] = true
	}

	for _, l := range order {
		if layout[l] != -1 {
			continue
		}
		// Cost of placing l at p: weighted distance to placed partners.
		best, bestCost := -1, 1<<30
		for _, p := range physOrder {
			if used[p] {
				continue
			}
			cost := 0
			connected := true
			for other := 0; other < n; other++ {
				if weight[l][other] == 0 || layout[other] == -1 {
					continue
				}
				d := m.Distance(p, layout[other])
				if d < 0 {
					connected = false
					break
				}
				cost += weight[l][other] * d
			}
			if !connected {
				continue
			}
			if cost < bestCost {
				best, bestCost = p, cost
			}
		}
		if best == -1 {
			// Disconnected device region; fall back to any free qubit.
			for _, p := range physOrder {
				if !used[p] {
					best = p
					break
				}
			}
		}
		place(l, best)
	}
	return layout
}

// RouteWithLayout is Route with an explicit initial logical→physical
// layout (see ChooseInitialLayout). The returned final layout reflects
// both the initial placement and any SWAPs inserted.
func RouteWithLayout(c *circuit.Circuit, m *CouplingMap, initial []int) (*circuit.Circuit, []int, error) {
	return route(c, m, initial)
}
