package transpile

import (
	"math"
	"math/cmplx"

	"repro/internal/circuit"
	"repro/internal/gate"
	"repro/internal/linalg"
)

// ZYZAngles decomposes an arbitrary 2x2 unitary as e^{iγ}·U3(θ,φ,λ) and
// returns the U3 angles (the global phase γ is discarded).
func ZYZAngles(u *linalg.Matrix) (theta, phi, lambda float64) {
	a := u.At(0, 0)
	b := u.At(0, 1)
	c := u.At(1, 0)
	theta = 2 * math.Atan2(cmplx.Abs(c), cmplx.Abs(a))
	switch {
	case cmplx.Abs(a) < 1e-12: // θ = π: top-left is zero
		phi = cmplx.Phase(c)
		lambda = cmplx.Phase(-b)
	case cmplx.Abs(c) < 1e-12: // θ = 0: off-diagonals are zero
		gamma := cmplx.Phase(a)
		phi = 0
		lambda = cmplx.Phase(u.At(1, 1)) - gamma
	default:
		gamma := cmplx.Phase(a)
		phi = cmplx.Phase(c) - gamma
		lambda = cmplx.Phase(-b) - gamma
	}
	return theta, phi, lambda
}

// isIdentityUpToPhase reports whether u ≈ e^{iγ}·I.
func isIdentityUpToPhase(u *linalg.Matrix, tol float64) bool {
	if cmplx.Abs(u.At(0, 1)) > tol || cmplx.Abs(u.At(1, 0)) > tol {
		return false
	}
	return cmplx.Abs(u.At(0, 0)-u.At(1, 1)) < tol
}

// FuseSingleQubit merges runs of adjacent single-qubit gates on the same
// qubit into one u3 gate (or nothing, when the product is the identity up
// to phase). Gates of other qubits interleaved between them do not block
// fusion; any multi-qubit gate touching the qubit does.
func FuseSingleQubit(c *circuit.Circuit) *circuit.Circuit {
	out := circuit.New(c.NumQubits)
	// pending[q] holds the accumulated 2x2 product for qubit q.
	pending := make([]*linalg.Matrix, c.NumQubits)

	flush := func(q int) {
		u := pending[q]
		pending[q] = nil
		if u == nil {
			return
		}
		if isIdentityUpToPhase(u, 1e-8) {
			return
		}
		theta, phi, lambda := ZYZAngles(u)
		out.U3(q, theta, phi, lambda)
	}

	for _, op := range c.Ops {
		spec := op.Spec()
		if spec.Qubits == 1 {
			m := spec.Build(op.Params)
			q := op.Qubits[0]
			if pending[q] == nil {
				pending[q] = m
			} else {
				pending[q] = linalg.Mul(m, pending[q])
			}
			continue
		}
		for _, q := range op.Qubits {
			flush(q)
		}
		out.Ops = append(out.Ops, op.Clone())
	}
	for q := 0; q < c.NumQubits; q++ {
		flush(q)
	}
	return out
}

// matrixOf returns the 2x2 or larger unitary of an op.
func matrixOf(op circuit.Op) *linalg.Matrix {
	return gate.MustLookup(op.Name).Build(op.Params)
}
