package transpile

import (
	"fmt"

	"repro/internal/circuit"
)

// CouplingMap is an undirected hardware connectivity graph over physical
// qubits; CNOTs may only be applied between listed pairs.
type CouplingMap struct {
	// NumQubits is the number of physical qubits.
	NumQubits int
	// Edges lists the undirected couplings.
	Edges [][2]int

	adj  map[int][]int
	dist [][]int
}

// NewCouplingMap builds a coupling map and precomputes all-pairs shortest
// path distances (BFS).
func NewCouplingMap(numQubits int, edges [][2]int) *CouplingMap {
	m := &CouplingMap{NumQubits: numQubits, Edges: edges, adj: map[int][]int{}}
	for _, e := range edges {
		m.adj[e[0]] = append(m.adj[e[0]], e[1])
		m.adj[e[1]] = append(m.adj[e[1]], e[0])
	}
	m.dist = make([][]int, numQubits)
	for s := 0; s < numQubits; s++ {
		d := make([]int, numQubits)
		for i := range d {
			d[i] = -1
		}
		d[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range m.adj[u] {
				if d[v] == -1 {
					d[v] = d[u] + 1
					queue = append(queue, v)
				}
			}
		}
		m.dist[s] = d
	}
	return m
}

// LinearCoupling returns the linear-chain topology 0-1-2-...-(n-1), the
// layout of the 5-qubit IBMQ Manila-class devices.
func LinearCoupling(n int) *CouplingMap {
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return NewCouplingMap(n, edges)
}

// Adjacent reports whether physical qubits a and b are coupled.
func (m *CouplingMap) Adjacent(a, b int) bool { return m.dist[a][b] == 1 }

// Distance returns the shortest-path hop count between physical qubits,
// or -1 if disconnected.
func (m *CouplingMap) Distance(a, b int) int { return m.dist[a][b] }

// Route maps the circuit onto the coupling map with greedy SWAP insertion
// from the trivial (identity) initial layout. The input must already be in
// a ≤2-qubit basis (call Lower first). It returns the physical circuit and
// the final layout: layout[logical] = physical qubit holding that logical
// qubit at the end of the circuit, so callers can un-permute measured
// bitstrings.
func Route(c *circuit.Circuit, m *CouplingMap) (*circuit.Circuit, []int, error) {
	return route(c, m, nil)
}

// route implements Route with an optional initial layout (nil = identity).
func route(c *circuit.Circuit, m *CouplingMap, initial []int) (*circuit.Circuit, []int, error) {
	if c.NumQubits > m.NumQubits {
		return nil, nil, fmt.Errorf("transpile: circuit has %d qubits, device has %d", c.NumQubits, m.NumQubits)
	}
	if initial != nil && len(initial) != c.NumQubits {
		return nil, nil, fmt.Errorf("transpile: initial layout has %d entries, want %d", len(initial), c.NumQubits)
	}
	layout := make([]int, c.NumQubits) // logical -> physical
	holder := make([]int, m.NumQubits) // physical -> logical (or -1)
	for i := range holder {
		holder[i] = -1
	}
	for l := 0; l < c.NumQubits; l++ {
		p := l
		if initial != nil {
			p = initial[l]
		}
		if p < 0 || p >= m.NumQubits || holder[p] != -1 {
			return nil, nil, fmt.Errorf("transpile: invalid initial layout (qubit %d -> %d)", l, p)
		}
		layout[l] = p
		holder[p] = l
	}

	out := circuit.New(m.NumQubits)
	swapPhys := func(pa, pb int) {
		out.Swap(pa, pb)
		la, lb := holder[pa], holder[pb]
		holder[pa], holder[pb] = lb, la
		if la >= 0 {
			layout[la] = pb
		}
		if lb >= 0 {
			layout[lb] = pa
		}
	}

	for _, op := range c.Ops {
		switch len(op.Qubits) {
		case 1:
			if err := out.Append(op.Name, []int{layout[op.Qubits[0]]}, op.Params); err != nil {
				return nil, nil, err
			}
		case 2:
			la, lb := op.Qubits[0], op.Qubits[1]
			// Walk la's qubit toward lb along a shortest path.
			for m.Distance(layout[la], layout[lb]) > 1 {
				pa := layout[la]
				best, bestD := -1, m.Distance(pa, layout[lb])
				for _, nb := range m.adj[pa] {
					if d := m.Distance(nb, layout[lb]); d < bestD {
						best, bestD = nb, d
					}
				}
				if best == -1 {
					return nil, nil, fmt.Errorf("transpile: qubits %d and %d are disconnected", la, lb)
				}
				swapPhys(pa, best)
			}
			if err := out.Append(op.Name, []int{layout[la], layout[lb]}, op.Params); err != nil {
				return nil, nil, err
			}
		default:
			return nil, nil, fmt.Errorf("transpile: Route requires a ≤2-qubit basis, got %s", op.Name)
		}
	}
	return out, layout, nil
}

// PermuteDistribution reorders an output probability distribution measured
// on physical qubits back into logical qubit order: layout[l] = physical
// position of logical qubit l. Physical qubits holding no logical qubit
// are traced out (they are never touched, so they stay |0>).
func PermuteDistribution(phys []float64, layout []int, numLogical int) []float64 {
	out := make([]float64, 1<<numLogical)
	for k, p := range phys {
		if p == 0 {
			continue
		}
		var logical int
		for l := 0; l < numLogical; l++ {
			if k&(1<<layout[l]) != 0 {
				logical |= 1 << l
			}
		}
		out[logical] += p
	}
	return out
}
