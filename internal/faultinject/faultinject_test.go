package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestFireWithoutHooksIsNil(t *testing.T) {
	if Enabled() {
		t.Fatal("Enabled() with no hooks")
	}
	if err := Fire("nowhere"); err != nil {
		t.Fatalf("Fire without hooks = %v", err)
	}
}

func TestFailOnCallSequencing(t *testing.T) {
	boom := Error("test.site")
	restore := Set("test.site", FailOnCall(3, boom))
	defer restore()
	if !Enabled() {
		t.Fatal("Enabled() = false after Set")
	}
	for call := 1; call <= 5; call++ {
		err := Fire("test.site")
		if call == 3 && !errors.Is(err, boom) {
			t.Fatalf("call %d: got %v, want injected error", call, err)
		}
		if call != 3 && err != nil {
			t.Fatalf("call %d: got %v, want nil", call, err)
		}
	}
}

func TestRestoreRemovesHook(t *testing.T) {
	restore := Set("test.restore", FailAlways(Error("test.restore")))
	if err := Fire("test.restore"); err == nil {
		t.Fatal("hook not active")
	}
	restore()
	restore() // idempotent
	if Enabled() {
		t.Fatal("Enabled() = true after restore")
	}
	if err := Fire("test.restore"); err != nil {
		t.Fatalf("Fire after restore = %v", err)
	}
}

func TestPanicOnCall(t *testing.T) {
	restore := Set("test.panic", PanicOnCall(1, "injected crash"))
	defer restore()
	defer func() {
		if r := recover(); r != "injected crash" {
			t.Fatalf("recovered %v, want injected crash", r)
		}
	}()
	_ = Fire("test.panic")
	t.Fatal("Fire did not panic")
}

func TestConcurrentFiresHitEachCallOnce(t *testing.T) {
	boom := Error("test.conc")
	restore := Set("test.conc", FailOnCall(10, boom))
	defer restore()
	var wg sync.WaitGroup
	hits := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if err := Fire("test.conc"); err != nil {
					hits <- err
				}
			}
		}()
	}
	wg.Wait()
	close(hits)
	count := 0
	for err := range hits {
		count++
		if !errors.Is(err, boom) {
			t.Fatalf("unexpected error %v", err)
		}
	}
	if count != 1 {
		t.Fatalf("injected error delivered %d times, want exactly 1", count)
	}
}
