package faultinject

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestFireWithoutHooksIsNil(t *testing.T) {
	if Enabled() {
		t.Fatal("Enabled() with no hooks")
	}
	if err := Fire("nowhere"); err != nil {
		t.Fatalf("Fire without hooks = %v", err)
	}
}

func TestFailOnCallSequencing(t *testing.T) {
	boom := Error("test.site")
	restore := Set("test.site", FailOnCall(3, boom))
	defer restore()
	if !Enabled() {
		t.Fatal("Enabled() = false after Set")
	}
	for call := 1; call <= 5; call++ {
		err := Fire("test.site")
		if call == 3 && !errors.Is(err, boom) {
			t.Fatalf("call %d: got %v, want injected error", call, err)
		}
		if call != 3 && err != nil {
			t.Fatalf("call %d: got %v, want nil", call, err)
		}
	}
}

func TestRestoreRemovesHook(t *testing.T) {
	restore := Set("test.restore", FailAlways(Error("test.restore")))
	if err := Fire("test.restore"); err == nil {
		t.Fatal("hook not active")
	}
	restore()
	restore() // idempotent
	if Enabled() {
		t.Fatal("Enabled() = true after restore")
	}
	if err := Fire("test.restore"); err != nil {
		t.Fatalf("Fire after restore = %v", err)
	}
}

func TestPanicOnCall(t *testing.T) {
	restore := Set("test.panic", PanicOnCall(1, "injected crash"))
	defer restore()
	defer func() {
		if r := recover(); r != "injected crash" {
			t.Fatalf("recovered %v, want injected crash", r)
		}
	}()
	_ = Fire("test.panic")
	t.Fatal("Fire did not panic")
}

func TestStallBlocksThenProceeds(t *testing.T) {
	const d = 20 * time.Millisecond
	restore := Set("test.stall", Stall(d))
	defer restore()
	start := time.Now()
	if err := Fire("test.stall"); err != nil {
		t.Fatalf("Stall injected an error: %v", err)
	}
	if got := time.Since(start); got < d {
		t.Fatalf("Fire returned after %v, want at least %v", got, d)
	}
}

func TestSitesListsInstalledHooksSorted(t *testing.T) {
	if got := Sites(); len(got) != 0 {
		t.Fatalf("Sites() with no hooks = %v, want empty", got)
	}
	r1 := Set("test.sites.b", FailAlways(Error("b")))
	r2 := Set("test.sites.a", FailAlways(Error("a")))
	if got, want := Sites(), []string{"test.sites.a", "test.sites.b"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Sites() = %v, want %v", got, want)
	}
	r1()
	if got, want := Sites(), []string{"test.sites.a"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Sites() after one restore = %v, want %v", got, want)
	}
	r2()
	if got := Sites(); len(got) != 0 {
		t.Fatalf("Sites() after cleanup = %v, want empty", got)
	}
}

func TestConcurrentFiresHitEachCallOnce(t *testing.T) {
	boom := Error("test.conc")
	restore := Set("test.conc", FailOnCall(10, boom))
	defer restore()
	var wg sync.WaitGroup
	hits := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if err := Fire("test.conc"); err != nil {
					hits <- err
				}
			}
		}()
	}
	wg.Wait()
	close(hits)
	count := 0
	for err := range hits {
		count++
		if !errors.Is(err, boom) {
			t.Fatalf("unexpected error %v", err)
		}
	}
	if count != 1 {
		t.Fatalf("injected error delivered %d times, want exactly 1", count)
	}
}
