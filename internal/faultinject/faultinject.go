// Package faultinject provides deterministic, test-only fault hooks for
// the pipeline's robustness paths. Production call sites fire a named
// site at well-defined points (one optimizer start, one block-synthesis
// attempt, one noise trajectory chunk, ...); tests install hooks that
// make chosen firings fail, panic, or stall. With no hooks installed a
// firing is a single atomic load, so instrumented hot paths stay hot.
//
// Hooks are keyed by site name and sequenced by a per-site call counter,
// so an injected fault is a pure function of (site, call index) —
// deterministic under any worker count or interleaving. Sites that need
// per-item targeting (for example "fail only block 2") embed the item
// index in the site name behind an Enabled() guard:
//
//	if faultinject.Enabled() {
//		if err := faultinject.Fire(fmt.Sprintf("core.block.%d", i)); err != nil {
//			return err
//		}
//	}
//
// # Site naming
//
// Sites are named "<area>.<component>.<event>" (or "<area>.<event>" when
// the area has a single component), all lower-case, with any per-item
// index appended as a final ".<n>" segment. The production sites:
//
//	core.block.<i>        one block-synthesis attempt in the pipeline
//	jobs.enqueue          a job admission into the questd queue
//	jobs.journal.append   one job-journal record write
//	jobs.worker.pickup    a worker claiming a queued job
//	jobs.worker.run       the pipeline run of a claimed job
//	jobs.artifact.write   a content-addressed artifact store write
//	serve.submit          an HTTP job submission before admission
//
// Chaos tests assert hook cleanup with Sites(): after every deferred
// restore has run, Sites() must be empty again.
package faultinject

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Hook decides what happens at the call-th firing of a site (call counts
// from 1): return nil to let the call proceed, or an error to inject it.
// A hook may also panic (to model a worker crash) or block (to model a
// stall); injected panics carry the hook's panic value.
type Hook func(call int) error

type site struct {
	hook  Hook
	calls atomic.Int64
}

var (
	installed atomic.Int32 // number of installed hooks; fast-path guard
	mu        sync.Mutex
	sites     map[string]*site
)

// Enabled reports whether any hook is installed. Call sites that must do
// extra work to fire (string formatting, say) gate it on Enabled.
func Enabled() bool { return installed.Load() > 0 }

// Set installs a hook at the named site, replacing any previous hook
// there, and returns a function that removes it again. Tests should
// defer the returned restore.
func Set(name string, h Hook) (restore func()) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		sites = map[string]*site{}
	}
	if _, exists := sites[name]; !exists {
		installed.Add(1)
	}
	sites[name] = &site{hook: h}
	return func() {
		mu.Lock()
		defer mu.Unlock()
		if _, exists := sites[name]; exists {
			delete(sites, name)
			installed.Add(-1)
		}
	}
}

// Fire triggers the named site: with no hook installed it returns nil
// (after a single atomic load); otherwise it invokes the hook with the
// site's next call number and returns whatever the hook returns (or
// propagates the hook's panic).
func Fire(name string) error {
	if installed.Load() == 0 {
		return nil
	}
	mu.Lock()
	s := sites[name]
	mu.Unlock()
	if s == nil {
		return nil
	}
	return s.hook(int(s.calls.Add(1)))
}

// FailOnCall returns a hook that injects err on exactly the n-th firing
// and lets every other call proceed.
func FailOnCall(n int, err error) Hook {
	return func(call int) error {
		if call == n {
			return err
		}
		return nil
	}
}

// FailAlways returns a hook that injects err on every firing.
func FailAlways(err error) Hook {
	return func(int) error { return err }
}

// PanicOnCall returns a hook that panics with value v on exactly the
// n-th firing.
func PanicOnCall(n int, v any) Hook {
	return func(call int) error {
		if call == n {
			panic(v)
		}
		return nil
	}
}

// Stall returns a hook that blocks every firing for d before letting the
// call proceed — a stalled worker, a slow disk, a wedged lock. Compose
// with the other helpers for stall-then-fail shapes:
//
//	faultinject.Set("jobs.worker.run", func(call int) error {
//		if err := faultinject.Stall(50 * time.Millisecond)(call); err != nil {
//			return err
//		}
//		return faultinject.FailOnCall(1, someErr)(call)
//	})
func Stall(d time.Duration) Hook {
	return func(int) error {
		time.Sleep(d)
		return nil
	}
}

// Sites returns the names of all currently installed hooks in sorted
// order. Chaos tests use it to assert cleanup: after their deferred
// restores have run, Sites() must be empty, so a leaked hook cannot
// silently poison later tests in the same process.
func Sites() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(sites))
	for name := range sites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Error builds a labeled injection error, so test assertions can
// recognize their own faults in wrapped error chains.
func Error(site string) error {
	return fmt.Errorf("faultinject: injected failure at %s", site)
}
