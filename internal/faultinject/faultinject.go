// Package faultinject provides deterministic, test-only fault hooks for
// the pipeline's robustness paths. Production call sites fire a named
// site at well-defined points (one optimizer start, one block-synthesis
// attempt, one noise trajectory chunk, ...); tests install hooks that
// make chosen firings fail, panic, or stall. With no hooks installed a
// firing is a single atomic load, so instrumented hot paths stay hot.
//
// Hooks are keyed by site name and sequenced by a per-site call counter,
// so an injected fault is a pure function of (site, call index) —
// deterministic under any worker count or interleaving. Sites that need
// per-item targeting (for example "fail only block 2") embed the item
// index in the site name behind an Enabled() guard:
//
//	if faultinject.Enabled() {
//		if err := faultinject.Fire(fmt.Sprintf("core.block.%d", i)); err != nil {
//			return err
//		}
//	}
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Hook decides what happens at the call-th firing of a site (call counts
// from 1): return nil to let the call proceed, or an error to inject it.
// A hook may also panic (to model a worker crash) or block (to model a
// stall); injected panics carry the hook's panic value.
type Hook func(call int) error

type site struct {
	hook  Hook
	calls atomic.Int64
}

var (
	installed atomic.Int32 // number of installed hooks; fast-path guard
	mu        sync.Mutex
	sites     map[string]*site
)

// Enabled reports whether any hook is installed. Call sites that must do
// extra work to fire (string formatting, say) gate it on Enabled.
func Enabled() bool { return installed.Load() > 0 }

// Set installs a hook at the named site, replacing any previous hook
// there, and returns a function that removes it again. Tests should
// defer the returned restore.
func Set(name string, h Hook) (restore func()) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		sites = map[string]*site{}
	}
	if _, exists := sites[name]; !exists {
		installed.Add(1)
	}
	sites[name] = &site{hook: h}
	return func() {
		mu.Lock()
		defer mu.Unlock()
		if _, exists := sites[name]; exists {
			delete(sites, name)
			installed.Add(-1)
		}
	}
}

// Fire triggers the named site: with no hook installed it returns nil
// (after a single atomic load); otherwise it invokes the hook with the
// site's next call number and returns whatever the hook returns (or
// propagates the hook's panic).
func Fire(name string) error {
	if installed.Load() == 0 {
		return nil
	}
	mu.Lock()
	s := sites[name]
	mu.Unlock()
	if s == nil {
		return nil
	}
	return s.hook(int(s.calls.Add(1)))
}

// FailOnCall returns a hook that injects err on exactly the n-th firing
// and lets every other call proceed.
func FailOnCall(n int, err error) Hook {
	return func(call int) error {
		if call == n {
			return err
		}
		return nil
	}
}

// FailAlways returns a hook that injects err on every firing.
func FailAlways(err error) Hook {
	return func(int) error { return err }
}

// PanicOnCall returns a hook that panics with value v on exactly the
// n-th firing.
func PanicOnCall(n int, v any) Hook {
	return func(call int) error {
		if call == n {
			panic(v)
		}
		return nil
	}
}

// Error builds a labeled injection error, so test assertions can
// recognize their own faults in wrapped error chains.
func Error(site string) error {
	return fmt.Errorf("faultinject: injected failure at %s", site)
}
