package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// rewriteJournalHeader rewrites the journal's header line to claim the
// given format version, keeping the body untouched — it fabricates a
// journal written by an older questd.
func rewriteJournalHeader(t *testing.T, dir string, version int) {
	t.Helper()
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		t.Fatalf("journal %s has no header line", path)
	}
	head, err := json.Marshal(journalHeader{V: version})
	if err != nil {
		t.Fatal(err)
	}
	out := append(checksumLine(head), data[i+1:]...)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestJournalV1ReplaysWithCNOTObjective: a journal written before the
// objective field existed (format v1, no objective on any Params) must
// replay in place, and its jobs' results must recompute byte-identically
// — the empty objective means "inherit the base config", which defaults
// to cnot, exactly what v1 ran. The manager itself enforces the
// byte-identity: a recomputed result is verified against the SHA
// journaled at completion.
func TestJournalV1ReplaysWithCNOTObjective(t *testing.T) {
	opts := testOpts(t)
	m := openManager(t, opts)
	j, err := m.Submit(Request{QASM: testQASM(t)})
	if err != nil {
		t.Fatal(err)
	}
	if j.Params.Objective != "" {
		t.Fatalf("objective-less submission resolved Objective to %q, want empty (journal compat)", j.Params.Objective)
	}
	done := waitState(t, m, j.ID, Done)
	ctx := context.Background()
	want, err := m.Result(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Downgrade the header: the body is already a valid v1 body because
	// Params.Objective is omitempty and was never set.
	rewriteJournalHeader(t, opts.Dir, journalVersionMin)

	m2 := openManager(t, opts)
	rj, ok := m2.Get(j.ID)
	if !ok {
		t.Fatalf("job %s lost across v1 replay", j.ID)
	}
	if rj.State != Done || rj.ResultSHA != done.ResultSHA {
		t.Fatalf("replayed job = %+v, want Done with SHA %s", rj, done.ResultSHA)
	}
	got, err := m2.Result(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.SHA != want.SHA {
		t.Fatalf("recomputed SHA %s != pre-restart %s", got.SHA, want.SHA)
	}
}

// TestJournalFutureVersionMovedAside: an unknown (newer) header version
// is still foreign — moved aside, fresh journal started.
func TestJournalFutureVersionMovedAside(t *testing.T) {
	opts := testOpts(t)
	m := openManager(t, opts)
	j, err := m.Submit(Request{QASM: testQASM(t)})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, Done)
	ctx := context.Background()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	rewriteJournalHeader(t, opts.Dir, journalVersion+1)

	m2 := openManager(t, opts)
	if _, ok := m2.Get(j.ID); ok {
		t.Fatal("job replayed from a future-version journal")
	}
	if _, err := os.Stat(filepath.Join(opts.Dir, journalName+".old")); err != nil {
		t.Fatalf("foreign journal not preserved as .old: %v", err)
	}
}

// TestObjectiveThreadsThroughJobs: an objective on a submission must
// survive the journal, reuse the objective-independent synthesis
// artifact, and reproduce deterministically.
func TestObjectiveThreadsThroughJobs(t *testing.T) {
	m := openManager(t, testOpts(t))
	src := testQASM(t)
	ctx := context.Background()

	base, err := m.Submit(Request{QASM: src})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, base.ID, Done)

	fid, err := m.Submit(Request{QASM: src, Params: Params{Objective: "fidelity:manila"}})
	if err != nil {
		t.Fatal(err)
	}
	if fid.Params.Objective != "fidelity:manila" {
		t.Fatalf("objective not recorded: %+v", fid.Params)
	}
	// The artifact key ignores the objective: the fidelity job reuses the
	// cnot job's synthesis harvest.
	if fid.ArtifactKey != base.ArtifactKey {
		t.Fatalf("artifact keys differ across objectives: %s vs %s", fid.ArtifactKey, base.ArtifactKey)
	}
	fidDone := waitState(t, m, fid.ID, Done)
	pf, err := m.Result(ctx, fid.ID)
	if err != nil {
		t.Fatal(err)
	}
	if pf.SHA != fidDone.ResultSHA || len(pf.Selected) == 0 {
		t.Fatalf("fidelity payload = %+v", pf)
	}
	if hits := m.Stats().Counters.ArtifactHits; hits == 0 {
		t.Error("fidelity job missed the shared synthesis artifact")
	}

	// Determinism: a resubmission with the same objective reproduces the
	// same selection (the content hash differs only because it covers the
	// job ID).
	again, err := m.Submit(Request{QASM: src, Params: Params{Objective: "fidelity:manila"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, again.ID, Done)
	pa, err := m.Result(ctx, again.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pa.Selected, pf.Selected) {
		t.Fatal("same objective, same circuit, different selection")
	}
}

// TestSubmitRejectsBadObjective: a malformed objective spec is shed at
// admission with ErrInvalid — it never reaches the journal or a worker.
func TestSubmitRejectsBadObjective(t *testing.T) {
	m := openManager(t, testOpts(t))
	_, err := m.Submit(Request{QASM: testQASM(t), Params: Params{Objective: "espresso"}})
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
	if n := m.Stats().Counters.Submitted; n != 0 {
		t.Fatalf("bad objective counted as submitted (%d)", n)
	}
}
