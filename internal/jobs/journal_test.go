package jobs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jn, recs, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	j := &Job{ID: "j-00000001", QASM: "x", State: Queued}
	must := func(rec record) {
		t.Helper()
		if err := jn.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	must(record{Op: "submit", Job: j})
	must(record{Op: "start", ID: j.ID, Attempt: 1})
	must(record{Op: "done", ID: j.ID, Artifact: "abc", AEps: 0.05, SHA: "deadbeef"})
	if err := jn.close(); err != nil {
		t.Fatal(err)
	}

	jn2, recs, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jn2.close()
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	if recs[0].Op != "submit" || recs[0].Job == nil || recs[0].Job.ID != j.ID {
		t.Errorf("submit record did not round-trip: %+v", recs[0])
	}
	if recs[2].Op != "done" || recs[2].SHA != "deadbeef" || recs[2].Artifact != "abc" {
		t.Errorf("done record did not round-trip: %+v", recs[2])
	}
}

func TestJournalSkipsTornTail(t *testing.T) {
	dir := t.TempDir()
	jn, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := jn.append(record{Op: "submit", Job: &Job{ID: "j-00000001"}}); err != nil {
		t.Fatal(err)
	}
	if err := jn.append(record{Op: "start", ID: "j-00000001", Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	if err := jn.close(); err != nil {
		t.Fatal(err)
	}

	// A crash can tear the final line mid-write: truncate it.
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	jn2, recs, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jn2.close()
	if len(recs) != 1 || recs[0].Op != "submit" {
		t.Fatalf("replay after torn tail = %+v, want just the submit", recs)
	}
}

func TestJournalBadHeaderStartsFresh(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	if err := os.WriteFile(path, []byte("not a journal at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	jn, recs, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jn.close()
	if len(recs) != 0 {
		t.Fatalf("replayed %d records from a foreign file", len(recs))
	}
	old, err := os.ReadFile(path + ".old")
	if err != nil || !strings.Contains(string(old), "not a journal") {
		t.Errorf("foreign journal was not preserved as .old: %v", err)
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	jn, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := jn.append(record{Op: "start", ID: "j-00000001", Attempt: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if !jn.needsCompaction(1) {
		// 10 records > 6·1 but below compactMin; the bound must respect
		// the minimum.
		if compactMin <= 10 {
			t.Fatal("needsCompaction(1) = false with 10 records")
		}
	}
	snap := &Job{ID: "j-00000001", State: Done, ResultSHA: "abc"}
	if err := jn.compact([]record{{Op: "state", Job: snap}}); err != nil {
		t.Fatal(err)
	}
	// Appends after compaction must land in the new file.
	if err := jn.append(record{Op: "cancel", ID: "j-00000002"}); err != nil {
		t.Fatal(err)
	}
	if err := jn.close(); err != nil {
		t.Fatal(err)
	}

	jn2, recs, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jn2.close()
	if len(recs) != 2 || recs[0].Op != "state" || recs[1].Op != "cancel" {
		t.Fatalf("replay after compaction = %+v", recs)
	}
	if recs[0].Job == nil || recs[0].Job.ResultSHA != "abc" {
		t.Errorf("state snapshot lost fields: %+v", recs[0].Job)
	}
}
