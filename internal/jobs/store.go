package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
	"repro/internal/pipeline"
)

// store is the content-addressed artifact store: every completed
// synthesis lands as one pipeline.SynthesisArtifact file whose name is
// the hash of the canonical QASM plus every synthesis-side Config field.
// A resubmitted circuit — or an M/CXWeight re-sweep of one — addresses
// the same file and becomes a Reselect instead of a full run; a result
// recomputed from the store after a restart is bit-identical to the one
// computed before it (the Reselect contract), which the manager verifies
// against the journaled result SHA.
type store struct {
	dir string
}

func openStore(dir string) (*store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: create artifact dir: %w", err)
	}
	return &store{dir: dir}, nil
}

// artifactKey content-addresses a synthesis: the canonical QASM and the
// resolved synthesis-side Config fields (the same fields as the
// pipeline's synthKey — ε included, so a key hit reselects
// bit-identically to a fresh run at the request's own settings).
func artifactKey(canonicalQASM string, cfg pipeline.Config) string {
	cfg = cfg.Resolved()
	h := sha256.New()
	io.WriteString(h, canonicalQASM)
	fmt.Fprintf(h, "|bs=%d,eps=%x,beam=%d,restarts=%d,keep=%d,seed=%d,maxrestarts=%d",
		cfg.BlockSize, math.Float64bits(cfg.Epsilon), cfg.SynthBeam,
		cfg.SynthRestarts, cfg.SynthKeepPerDepth, cfg.Seed, cfg.MaxRestarts)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

func (s *store) path(key string) string {
	return filepath.Join(s.dir, "art-"+key+".json")
}

// load returns the artifact stored under key, or (nil, nil) when the
// store has none (including when a stored file fails to decode — a
// corrupt artifact is a cache miss, never an error: the job simply
// re-synthesizes and overwrites it).
func (s *store) load(key string) (*pipeline.SynthesisArtifact, error) {
	f, err := os.Open(s.path(key))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("jobs: open artifact: %w", err)
	}
	defer f.Close()
	art, err := pipeline.LoadSynthesis(f)
	if err != nil {
		return nil, nil // corrupt artifact = miss; the caller re-synthesizes
	}
	return art, nil
}

// save writes the artifact under key: tmp file, fsync, atomic rename —
// a crash mid-save can never leave a torn artifact under a live key.
func (s *store) save(key string, art *pipeline.SynthesisArtifact) error {
	if err := faultinject.Fire("jobs.artifact.write"); err != nil {
		return fmt.Errorf("jobs: write artifact: %w", err)
	}
	tmp := s.path(key) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: write artifact: %w", err)
	}
	if err := art.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobs: write artifact: %w", err)
	}
	if err := syncJournal(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobs: sync artifact: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: close artifact: %w", err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: replace artifact: %w", err)
	}
	return nil
}
