package jobs

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/budget"
)

func testQueue(capacity, tenantCap int) *queue {
	return newQueue(capacity, tenantCap, time.Now)
}

func TestQueuePriorityThenFIFO(t *testing.T) {
	q := testQueue(10, 10)
	push := func(id string, prio int, seq uint64) {
		q.push(&Job{ID: id, Priority: prio, seq: seq}, false)
	}
	push("low-1", 0, 1)
	push("high", 5, 2)
	push("low-2", 0, 3)

	ctx := context.Background()
	var got []string
	for i := 0; i < 3; i++ {
		j, err := q.pop(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, j.ID)
	}
	want := []string{"high", "low-1", "low-2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}

func TestQueueReserveEnforcesBounds(t *testing.T) {
	q := testQueue(3, 2)
	if err := q.reserve("a"); err != nil {
		t.Fatal(err)
	}
	if err := q.reserve("a"); err != nil {
		t.Fatal(err)
	}
	if err := q.reserve("a"); !errors.Is(err, ErrTenantFull) {
		t.Fatalf("third reserve for tenant a = %v, want ErrTenantFull", err)
	}
	if err := q.reserve("b"); err != nil {
		t.Fatal(err)
	}
	if err := q.reserve("c"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("reserve past capacity = %v, want ErrQueueFull", err)
	}
	// A released reservation frees the slot.
	q.release("b")
	if err := q.reserve("c"); err != nil {
		t.Fatalf("reserve after release = %v", err)
	}
	// Consuming a reservation via push keeps the accounting balanced.
	q.push(&Job{ID: "j1", Tenant: "a", seq: 1}, true)
	q.push(&Job{ID: "j2", Tenant: "a", seq: 2}, true)
	if q.depth() != 2 {
		t.Fatalf("depth = %d, want 2", q.depth())
	}
	q.release("c") // free the global slot so the tenant bound decides
	if err := q.reserve("a"); !errors.Is(err, ErrTenantFull) {
		t.Fatalf("tenant a must still be at cap after push: %v", err)
	}
}

func TestQueueUnreservedPushBypassesCaps(t *testing.T) {
	q := testQueue(1, 1)
	// Recovery and retry re-entries re-enqueue journaled work even when
	// the queue is nominally full.
	q.push(&Job{ID: "j1", Tenant: "a", seq: 1}, false)
	q.push(&Job{ID: "j2", Tenant: "a", seq: 2}, false)
	if q.depth() != 2 {
		t.Fatalf("depth = %d, want 2", q.depth())
	}
}

func TestQueueDelayedMaturity(t *testing.T) {
	q := testQueue(10, 10)
	j := &Job{ID: "j1", seq: 1, notBefore: time.Now().Add(30 * time.Millisecond)}
	q.push(j, false)
	start := time.Now()
	got, err := q.pop(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "j1" {
		t.Fatalf("popped %s", got.ID)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("pop returned after %v; backoff not honoured", waited)
	}
}

func TestQueuePopContextCancel(t *testing.T) {
	q := testQueue(10, 10)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := q.pop(ctx)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, budget.ErrCancelled) {
			t.Fatalf("pop after cancel = %v, want ErrCancelled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop did not observe context cancellation")
	}
}

func TestQueueCloseUnblocksPop(t *testing.T) {
	q := testQueue(10, 10)
	q.push(&Job{ID: "j1", seq: 1}, false)
	done := make(chan error, 1)
	go func() {
		// First pop drains the item; second blocks until close.
		if _, err := q.pop(context.Background()); err != nil {
			done <- err
			return
		}
		_, err := q.pop(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case err := <-done:
		if !errors.Is(err, errQueueClosed) {
			t.Fatalf("pop after close = %v, want errQueueClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop did not observe close")
	}
}

func TestQueueRemove(t *testing.T) {
	q := testQueue(10, 10)
	q.push(&Job{ID: "ready", Tenant: "a", seq: 1}, false)
	q.push(&Job{ID: "delayed", Tenant: "a", seq: 2, notBefore: time.Now().Add(time.Hour)}, false)
	if !q.remove("ready") || !q.remove("delayed") {
		t.Fatal("remove failed to find queued jobs")
	}
	if q.remove("ready") {
		t.Fatal("remove found an already-removed job")
	}
	if q.depth() != 0 {
		t.Fatalf("depth = %d after removals", q.depth())
	}
	// Tenant accounting must be back to zero: the tenant can reserve its
	// full quota again.
	for i := 0; i < 2; i++ {
		if err := q.reserve("a"); err != nil {
			t.Fatalf("reserve %d after removals: %v", i, err)
		}
	}
}
