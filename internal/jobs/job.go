// Package jobs implements the crash-safe job layer behind questd: a
// bounded, priority-ordered queue of synthesis jobs, a pool of workers
// driving internal/pipeline under per-job deadlines, and an append-only
// checksummed journal that makes every job transition durable — a
// `kill -9` mid-synthesis recovers on the next Open with no duplicate
// execution of completed work.
//
// # Job lifecycle
//
//	            ┌────────────── retryable failure / crash recovery
//	            ▼               (attempt++, exponential backoff+jitter)
//	Queued ─► Running ─► Done
//	  │          │  └───► Failed     (deadline, retries exhausted)
//	  └──────────┴──────► Cancelled  (explicit DELETE)
//
// Every transition appends one journal record. On Open the journal is
// replayed: Queued jobs re-enqueue, Running jobs were lost to a crash
// and re-enqueue with one attempt consumed (until the retry budget is
// exhausted, then they fail), and terminal jobs are retained for status
// and result serving. Torn or corrupt journal tails are skipped, never
// fatal — the checksummed line format is the same discipline as
// internal/ucache's disk journal.
//
// # Results and the artifact store
//
// A completed job's heavy state is a content-addressed SynthesisArtifact
// (pipeline.Save/LoadSynthesis) keyed by the canonical QASM plus every
// synthesis-side Config field. Results are rendered from the artifact by
// pipeline.Reselect, which is bit-identical to the run that produced it,
// so a resubmitted circuit (or an M re-sweep of one) costs a Reselect
// instead of a full run, and a result recomputed after a restart is
// verified bit-for-bit against the SHA journaled at completion.
package jobs

import (
	"errors"
	"time"
)

// State is a job's position in the lifecycle state machine.
type State string

const (
	// Queued: admitted, journaled, waiting for a worker (possibly with a
	// retry backoff holding it back).
	Queued State = "queued"
	// Running: claimed by a worker, pipeline in progress.
	Running State = "running"
	// Done: completed; the result is servable (recomputed from the
	// artifact store if the process restarted since).
	Done State = "done"
	// Failed: terminal failure — deadline exceeded, retry budget
	// exhausted, or crashed too many times.
	Failed State = "failed"
	// Cancelled: explicitly cancelled while queued or running.
	Cancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Cancelled
}

// Params are the per-job pipeline settings a submission may override;
// zero values inherit the manager's base pipeline Config (and
// DefaultTimeout for Timeout).
type Params struct {
	// Epsilon is the per-block process-distance budget.
	Epsilon float64 `json:"epsilon,omitempty"`
	// MaxSamples is M, the ensemble size cap.
	MaxSamples int `json:"max_samples,omitempty"`
	// BlockSize is the maximum partition block size.
	BlockSize int `json:"block_size,omitempty"`
	// Seed drives the deterministic pipeline.
	Seed int64 `json:"seed,omitempty"`
	// Objective names the selection objective ("cnot",
	// "fidelity[:<backend>]", "hybrid:<w>[:<backend>]"); empty inherits
	// the manager's base pipeline objective. Deliberately NOT filled by
	// resolveParams: journals from before the field existed (and
	// objective-less submissions today) must replay byte-identically.
	Objective string `json:"objective,omitempty"`
	// Timeout is the per-job end-to-end deadline. A job that exceeds it
	// fails terminally (rerunning would hit the same wall).
	Timeout time.Duration `json:"timeout_ns,omitempty"`
	// Backend optionally names an execution backend ("ideal",
	// "noisy:0.005", "manila"); when set (and the circuit is small
	// enough to simulate) the result carries ensemble TVD/JSD stats.
	Backend string `json:"backend,omitempty"`
	// Shots is the measurement-shot count for the backend stats
	// (0 = exact probabilities).
	Shots int `json:"shots,omitempty"`
}

// Request is one job submission.
type Request struct {
	// QASM is the OpenQASM 2.0 source of the circuit to approximate.
	QASM string
	// Tenant attributes the job to a per-tenant queue quota; empty is
	// the anonymous tenant.
	Tenant string
	// Priority orders the queue (higher first; FIFO within a priority).
	Priority int
	// From optionally names a completed job whose synthesis artifact
	// this job reselects under its own ε/M — the explicit sweep path.
	// The candidate pool is the parent's harvest (synthesized at the
	// parent's ε), exactly the library's Reselect contract.
	From string
	// Params tune the pipeline for this job.
	Params Params
}

// Job is the queue's view of one submission. Manager methods return
// copies; mutating a returned Job has no effect.
type Job struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// QASM is the canonicalized circuit source (parsed and re-written,
	// so byte-identical submissions and semantically identical ones
	// address the same artifact).
	QASM   string `json:"qasm"`
	From   string `json:"from,omitempty"`
	Params Params `json:"params"`

	State    State  `json:"state"`
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`

	// ArtifactKey addresses the job's SynthesisArtifact in the content
	// store; ArtifactEpsilon is the ε the artifact was (or must be, if
	// it has to be rebuilt after loss) synthesized at. They differ from
	// the job's own ε only for From-jobs.
	ArtifactKey     string  `json:"artifact_key,omitempty"`
	ArtifactEpsilon float64 `json:"artifact_epsilon,omitempty"`
	// ResultSHA is the content hash journaled at completion; results
	// recomputed after a restart are verified against it.
	ResultSHA string `json:"result_sha,omitempty"`

	// Wall-clock telemetry (journal timestamps; never feeds results).
	SubmittedAt time.Time `json:"submitted_at,omitempty"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`

	// seq orders jobs FIFO within a priority; notBefore delays retries.
	seq       uint64
	notBefore time.Time
	// cancelRequested marks a Cancel() on a running job, so the
	// resulting ErrCancelled is classified as a cancellation rather
	// than a retryable failure.
	cancelRequested bool
}

// Typed admission and lookup errors; the HTTP layer maps these onto
// status codes (429 for the shedding pair, 404/409 for the lookups).
var (
	// ErrQueueFull sheds a submission because the global queue bound is
	// reached. The caller should back off and retry.
	ErrQueueFull = errors.New("job queue full")
	// ErrTenantFull sheds a submission because the tenant's queue quota
	// is reached (the shared queue may still have room).
	ErrTenantFull = errors.New("tenant queue full")
	// ErrDraining rejects a submission while the manager is shutting
	// down.
	ErrDraining = errors.New("manager draining")
	// ErrUnknownJob reports a job ID that is not (or no longer) known.
	ErrUnknownJob = errors.New("unknown job")
	// ErrNotDone reports a result request for a job that has not
	// completed successfully.
	ErrNotDone = errors.New("job not done")
	// ErrTerminal reports a cancel request for an already-terminal job.
	ErrTerminal = errors.New("job already terminal")
	// ErrInvalid reports a malformed submission (unparseable QASM, bad
	// From reference); the HTTP layer maps it to 400.
	ErrInvalid = errors.New("invalid job request")
)
