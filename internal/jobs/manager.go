package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/budget"
	"repro/internal/circuit"
	"repro/internal/faultinject"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/qasm"
)

// Options configure a Manager. Zero values select the documented
// defaults.
type Options struct {
	// Dir is the data directory (journal + artifact store). Required.
	Dir string
	// Workers is the synthesis worker pool size (default 4; -1 runs no
	// workers — recovery-inspection and test tooling).
	Workers int
	// QueueCap bounds the total queued jobs (default 256); admissions
	// beyond it are shed with ErrQueueFull.
	QueueCap int
	// TenantCap bounds one tenant's share of the queue (default
	// QueueCap): a single tenant's storm sheds with ErrTenantFull
	// before it can fill the shared queue.
	TenantCap int
	// MaxRetries is how many extra attempts a job gets after a crash or
	// transient failure (default 3; negative disables retries).
	MaxRetries int
	// BackoffBase/BackoffMax shape the retry backoff:
	// base·2^(attempt-1) capped at max, plus deterministic jitter
	// (defaults 250ms / 30s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// DefaultTimeout is the per-job deadline when a request does not
	// set one (default 10m).
	DefaultTimeout time.Duration
	// KeepTerminal is how many terminal jobs stay queryable (default
	// 512); older ones are pruned at compaction.
	KeepTerminal int
	// Pipeline is the base pipeline Config; per-job Params override its
	// Epsilon/MaxSamples/BlockSize/Seed. Its SynthCache (if any) is
	// shared across every tenant's jobs. When its Scheduler is nil and
	// Workers > 0, the manager installs one shared par.Pool (sized by
	// Pipeline.Parallelism, 0 = NumCPU) and enables the streaming
	// Overlap path, so all workers' jobs draw synthesis slots from one
	// machine-wide budget.
	Pipeline pipeline.Config
	// Clock is the time source (default time.Now; tests inject).
	Clock func() time.Time
}

func (o *Options) defaults() {
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.Workers < 0 {
		o.Workers = 0
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 256
	}
	if o.TenantCap <= 0 || o.TenantCap > o.QueueCap {
		o.TenantCap = o.QueueCap
	}
	switch {
	case o.MaxRetries == 0:
		o.MaxRetries = 3
	case o.MaxRetries < 0:
		o.MaxRetries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 250 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 30 * time.Second
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 10 * time.Minute
	}
	if o.KeepTerminal <= 0 {
		o.KeepTerminal = 512
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	if o.Pipeline.Scheduler == nil && o.Workers > 0 {
		// One machine-wide synthesis slot budget shared by every worker's
		// pipeline run, replacing the old static NumCPU/Workers split: a
		// lone job can saturate the machine, and W busy jobs draw slots
		// FIFO from the same pool instead of oversubscribing it W-fold.
		// Streaming (Overlap) lets each job's blocks reach the shared
		// pool as the partition scan closes them. Pool size follows
		// Pipeline.Parallelism (0 = NumCPU). Neither field enters
		// artifact keys, so results and keys are unchanged.
		o.Pipeline.Scheduler = par.NewPool(o.Pipeline.Parallelism)
		o.Pipeline.Overlap = true
	}
	if o.Pipeline.Parallelism == 0 {
		// No-scheduler managers (Workers < 0 inspection tooling, or an
		// explicit Scheduler with Parallelism unset) keep the old
		// proportional split so W jobs don't oversubscribe the machine
		// W-fold on the staged path.
		per := runtime.NumCPU()
		if o.Workers > 0 {
			per = per / o.Workers
		}
		if per < 1 {
			per = 1
		}
		o.Pipeline.Parallelism = per
	}
}

// Counters accumulate over a Manager's lifetime (they reset at Open;
// the journal is the durable record).
type Counters struct {
	Submitted      uint64 `json:"submitted"`
	Done           uint64 `json:"done"`
	Failed         uint64 `json:"failed"`
	Cancelled      uint64 `json:"cancelled"`
	Retried        uint64 `json:"retried"`
	Shed           uint64 `json:"shed"`
	Recovered      uint64 `json:"recovered"`
	ArtifactHits   uint64 `json:"artifact_hits"`
	ArtifactMisses uint64 `json:"artifact_misses"`
}

// Stats is a point-in-time operational snapshot (the /healthz payload).
type Stats struct {
	QueueDepth   int      `json:"queue_depth"`
	Running      int      `json:"running"`
	WorkersLive  int      `json:"workers_live"`
	Draining     bool     `json:"draining"`
	JournalOK    bool     `json:"journal_ok"`
	JournalError string   `json:"journal_error,omitempty"`
	Counters     Counters `json:"counters"`
}

// Manager owns the job table, the queue, the worker pool, and the
// journal. All methods are safe for concurrent use.
type Manager struct {
	opts  Options
	clock func() time.Time

	journal *journal
	store   *store
	q       *queue

	// txMu serializes every (journal append, state update) pair and the
	// compaction snapshot, so the journal can never miss a transition
	// the in-memory table has. Lock order: txMu before mu.
	txMu sync.Mutex
	mu   sync.Mutex

	jobs     map[string]*Job
	results  map[string]*ResultPayload
	running  map[string]context.CancelFunc
	seq      uint64
	nextID   uint64
	counters Counters
	draining bool

	runCtx  context.Context // cancelled only at forced stop
	stopRun context.CancelFunc
	popCtx  context.Context
	stopPop context.CancelFunc

	wg          sync.WaitGroup
	workersLive atomic.Int32
	resultMu    sync.Mutex // serializes post-restart result recomputes
}

// Open loads (or initializes) the data directory, replays the journal —
// re-enqueueing queued jobs, restarting crashed ones with a consumed
// attempt, retaining terminal ones — and starts the worker pool.
func Open(opts Options) (*Manager, error) {
	opts.defaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("jobs: Options.Dir is required")
	}
	st, err := openStore(opts.Dir + "/artifacts")
	if err != nil {
		return nil, err
	}
	jn, recs, err := openJournal(opts.Dir)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		opts:    opts,
		clock:   opts.Clock,
		journal: jn,
		store:   st,
		q:       newQueue(opts.QueueCap, opts.TenantCap, opts.Clock),
		jobs:    map[string]*Job{},
		results: map[string]*ResultPayload{},
		running: map[string]context.CancelFunc{},
	}
	m.runCtx, m.stopRun = context.WithCancel(context.Background())
	m.popCtx, m.stopPop = context.WithCancel(context.Background())
	if err := m.recover(recs); err != nil {
		jn.close()
		return nil, err
	}
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		m.workersLive.Add(1)
		go m.worker()
	}
	return m, nil
}

// recover rebuilds the job table from replayed records and re-enqueues
// the non-terminal jobs. Runs before any worker starts.
func (m *Manager) recover(recs []record) error {
	for _, rec := range recs {
		switch rec.Op {
		case "submit", "state":
			if rec.Job == nil || rec.Job.ID == "" {
				continue
			}
			j := *rec.Job
			if rec.Op == "submit" {
				j.State = Queued
			}
			m.seq++
			j.seq = m.seq
			m.jobs[j.ID] = &j
			if n, ok := parseID(j.ID); ok && n >= m.nextID {
				m.nextID = n + 1
			}
		case "start":
			if j := m.jobs[rec.ID]; j != nil {
				j.State = Running
				j.Attempts = rec.Attempt
				j.StartedAt = time.Unix(0, rec.T)
			}
		case "done":
			if j := m.jobs[rec.ID]; j != nil {
				j.State = Done
				j.Error = ""
				j.ResultSHA = rec.SHA
				if rec.Artifact != "" {
					j.ArtifactKey = rec.Artifact
					j.ArtifactEpsilon = rec.AEps
				}
				j.FinishedAt = time.Unix(0, rec.T)
			}
		case "fail":
			if j := m.jobs[rec.ID]; j != nil {
				if rec.Attempt > 0 {
					j.Attempts = rec.Attempt
				}
				j.Error = rec.Reason
				if rec.Final {
					j.State = Failed
					j.FinishedAt = time.Unix(0, rec.T)
				} else {
					j.State = Queued
				}
			}
		case "cancel":
			if j := m.jobs[rec.ID]; j != nil {
				j.State = Cancelled
				j.FinishedAt = time.Unix(0, rec.T)
			}
		}
	}

	// Re-enqueue survivors in submission order. A job journaled as
	// Running was lost to a crash: it consumed its attempt, comes back
	// with backoff, and fails terminally once the retry budget is gone —
	// a crash-looping job cannot wedge the service forever.
	var live []*Job
	for _, j := range m.jobs {
		if !j.State.Terminal() {
			live = append(live, j)
		}
	}
	sort.Slice(live, func(i, k int) bool { return live[i].seq < live[k].seq })
	now := m.clock()
	for _, j := range live {
		if j.State == Running {
			crashReason := fmt.Sprintf("process crashed during attempt %d (recovered)", j.Attempts)
			if j.Attempts >= m.maxAttempts() {
				if err := m.journal.append(record{
					Op: "fail", ID: j.ID, Attempt: j.Attempts,
					Reason: crashReason + ": retry budget exhausted", Final: true,
					T: now.UnixNano(),
				}); err != nil {
					return err
				}
				j.State = Failed
				j.Error = crashReason + ": retry budget exhausted"
				j.FinishedAt = now
				continue
			}
			if err := m.journal.append(record{
				Op: "fail", ID: j.ID, Attempt: j.Attempts,
				Reason: crashReason, T: now.UnixNano(),
			}); err != nil {
				return err
			}
			j.State = Queued
			j.Error = crashReason
			j.notBefore = now.Add(backoffDelay(m.opts.BackoffBase, m.opts.BackoffMax, j.ID, j.Attempts))
		}
		m.counters.Recovered++
		m.q.push(j, false)
	}
	m.pruneAndCompact()
	return nil
}

func parseID(id string) (uint64, bool) {
	var n uint64
	if _, err := fmt.Sscanf(id, "j-%d", &n); err != nil {
		return 0, false
	}
	return n, true
}

// maxAttempts is the total start budget: the first attempt plus the
// retry allowance.
func (m *Manager) maxAttempts() int { return 1 + m.opts.MaxRetries }

// resolveParams fills a request's zero-valued Params from the base
// pipeline Config and the manager defaults, so the Job records the
// concrete settings it will run under.
func (m *Manager) resolveParams(p Params) Params {
	base := m.opts.Pipeline.Resolved()
	if p.Epsilon <= 0 {
		p.Epsilon = base.Epsilon
	}
	if p.MaxSamples <= 0 {
		p.MaxSamples = base.MaxSamples
	}
	if p.BlockSize <= 0 {
		p.BlockSize = base.BlockSize
	}
	if p.Seed == 0 {
		p.Seed = base.Seed
	}
	if p.Timeout <= 0 {
		p.Timeout = m.opts.DefaultTimeout
	}
	return p
}

// jobConfig builds the pipeline Config for a job: the base Config with
// the job's Params substituted. The per-job deadline is enforced via
// the worker's context, not Config.Timeout. An empty Params.Objective
// inherits the base Config's objective; a non-empty spec is resolved
// through the backend registry (Submit validates it at admission, so an
// error here means a journal written by a different registry — the job
// fails rather than silently changing objective).
func (m *Manager) jobConfig(p Params) (pipeline.Config, error) {
	cfg := m.opts.Pipeline
	cfg.Epsilon = p.Epsilon
	cfg.MaxSamples = p.MaxSamples
	cfg.BlockSize = p.BlockSize
	cfg.Seed = p.Seed
	cfg.Timeout = 0
	if p.Objective != "" {
		obj, err := backend.Objective(p.Objective)
		if err != nil {
			return pipeline.Config{}, err
		}
		cfg.Objective = obj
	}
	return cfg, nil
}

// Submit validates, journals, and enqueues one job. The returned Job is
// a snapshot. Shedding (ErrQueueFull/ErrTenantFull) happens before
// anything is journaled: a shed job never existed.
func (m *Manager) Submit(req Request) (Job, error) {
	if err := faultinject.Fire("jobs.enqueue"); err != nil {
		return Job{}, fmt.Errorf("jobs: admit: %w", err)
	}
	c, err := qasm.Parse(req.QASM)
	if err != nil {
		return Job{}, fmt.Errorf("%w: parse qasm: %w", ErrInvalid, err)
	}
	canonical := qasm.Write(c)
	p := m.resolveParams(req.Params)
	cfg, err := m.jobConfig(p)
	if err != nil {
		return Job{}, fmt.Errorf("%w: %w", ErrInvalid, err)
	}

	// The artifact key deliberately ignores the objective: switching
	// objectives reuses the synthesis harvest and pays only a Reselect.
	akey := artifactKey(canonical, cfg)
	aeps := cfg.Resolved().Epsilon
	if req.From != "" {
		m.mu.Lock()
		parent, ok := m.jobs[req.From]
		var pj Job
		if ok {
			pj = *parent
		}
		m.mu.Unlock()
		switch {
		case !ok:
			return Job{}, fmt.Errorf("%w: from job %q: %w", ErrInvalid, req.From, ErrUnknownJob)
		case pj.State != Done:
			return Job{}, fmt.Errorf("%w: from job %q is %s, need done", ErrInvalid, req.From, pj.State)
		case pj.QASM != canonical:
			return Job{}, fmt.Errorf("%w: from job %q was submitted with a different circuit", ErrInvalid, req.From)
		case pj.Params.BlockSize != p.BlockSize:
			return Job{}, fmt.Errorf("%w: from job %q used block size %d, request resolves to %d",
				ErrInvalid, req.From, pj.Params.BlockSize, p.BlockSize)
		}
		akey, aeps = pj.ArtifactKey, pj.ArtifactEpsilon
	}

	m.txMu.Lock()
	defer m.txMu.Unlock()
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return Job{}, ErrDraining
	}
	m.seq++
	m.nextID++
	j := &Job{
		ID:              fmt.Sprintf("j-%08d", m.nextID),
		Tenant:          req.Tenant,
		Priority:        req.Priority,
		QASM:            canonical,
		From:            req.From,
		Params:          p,
		State:           Queued,
		ArtifactKey:     akey,
		ArtifactEpsilon: aeps,
		SubmittedAt:     m.clock(),
		seq:             m.seq,
	}
	m.mu.Unlock()

	if err := m.q.reserve(j.Tenant); err != nil {
		m.mu.Lock()
		m.counters.Shed++
		m.mu.Unlock()
		return Job{}, err
	}
	if err := m.journal.append(record{Op: "submit", Job: j, T: j.SubmittedAt.UnixNano()}); err != nil {
		m.q.release(j.Tenant)
		return Job{}, err
	}
	m.mu.Lock()
	m.jobs[j.ID] = j
	m.counters.Submitted++
	snap := *j
	m.mu.Unlock()
	m.q.push(j, true)
	return snap, nil
}

// Get returns a snapshot of a job.
func (m *Manager) Get(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Cancel cancels a queued job immediately, or requests cancellation of
// a running one (its pipeline context is cancelled; the terminal
// transition lands asynchronously).
func (m *Manager) Cancel(id string) error {
	m.txMu.Lock()
	defer m.txMu.Unlock()
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrUnknownJob
	}
	if j.State.Terminal() {
		m.mu.Unlock()
		return fmt.Errorf("%w (%s)", ErrTerminal, j.State)
	}
	j.cancelRequested = true
	if j.State == Running {
		if cancel := m.running[id]; cancel != nil {
			cancel()
		}
		m.mu.Unlock()
		return nil
	}
	removed := m.q.remove(id)
	m.mu.Unlock()
	if !removed {
		// Popped but not yet started: the worker sees cancelRequested.
		return nil
	}
	return m.transitionLocked(j, record{Op: "cancel", ID: id}, func() {
		j.State = Cancelled
		j.FinishedAt = m.clock()
		m.counters.Cancelled++
	})
}

// transitionLocked journals rec then applies the state mutation under
// m.mu. Caller holds txMu. A journal failure latches unhealthy but the
// in-memory transition still applies — the process keeps serving, the
// durability loss is visible in Stats.
func (m *Manager) transitionLocked(j *Job, rec record, apply func()) error {
	rec.T = m.clock().UnixNano()
	err := m.journal.append(rec)
	m.mu.Lock()
	apply()
	m.mu.Unlock()
	return err
}

// worker is one pool goroutine: pop, claim, run, repeat until the
// queue closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	defer m.workersLive.Add(-1)
	for {
		j, err := m.q.pop(m.popCtx)
		if err != nil {
			return
		}
		if err := faultinject.Fire("jobs.worker.pickup"); err != nil {
			m.mu.Lock()
			j.Attempts++
			m.mu.Unlock()
			m.retryOrFail(j, fmt.Errorf("jobs: pickup: %w", err))
			continue
		}
		m.runJob(j)
	}
}

// runJob executes one attempt of a claimed job and classifies the
// outcome: done, cancelled, drained (re-queued for the next process),
// deadline-failed, or retried with backoff.
func (m *Manager) runJob(j *Job) {
	m.txMu.Lock()
	m.mu.Lock()
	if j.cancelRequested {
		m.mu.Unlock()
		m.txMu.Unlock()
		m.finishCancel(j)
		return
	}
	j.Attempts++
	attempt := j.Attempts
	j.State = Running
	j.StartedAt = m.clock()
	jctx, cancel := context.WithTimeout(m.runCtx, j.Params.Timeout)
	m.running[j.ID] = cancel
	m.mu.Unlock()
	// Start is journaled after the state flip but under the same txMu
	// tick; a crash between the two is indistinguishable from a crash
	// just before pickup (the job replays as queued and re-runs).
	m.journal.append(record{Op: "start", ID: j.ID, Attempt: attempt, T: j.StartedAt.UnixNano()})
	m.txMu.Unlock()

	payload, err := m.execute(jctx, j)
	cancel()
	m.mu.Lock()
	delete(m.running, j.ID)
	cancelReq := j.cancelRequested
	draining := m.draining
	m.mu.Unlock()

	switch {
	case err == nil:
		m.txMu.Lock()
		m.transitionLocked(j, record{
			Op: "done", ID: j.ID,
			Artifact: j.ArtifactKey, AEps: j.ArtifactEpsilon, SHA: payload.SHA,
		}, func() {
			j.State = Done
			j.Error = ""
			j.ResultSHA = payload.SHA
			j.FinishedAt = m.clock()
			m.results[j.ID] = payload
			m.counters.Done++
		})
		m.txMu.Unlock()
		m.pruneAndCompact()
	case cancelReq && budget.Terminated(err):
		m.finishCancel(j)
	case draining && budget.Terminated(err):
		// The drain deadline cut this job loose: journal a retryable
		// failure so the next Open re-runs it.
		m.txMu.Lock()
		m.transitionLocked(j, record{
			Op: "fail", ID: j.ID, Attempt: j.Attempts,
			Reason: "drained: " + err.Error(),
		}, func() {
			j.State = Queued
			j.Error = "drained: " + err.Error()
		})
		m.txMu.Unlock()
	case errors.Is(err, budget.ErrDeadline):
		// The job's own deadline: terminal — a rerun would hit the same
		// wall.
		m.failFinal(j, fmt.Sprintf("job deadline (%v) exceeded: %v", j.Params.Timeout, err))
	default:
		m.retryOrFail(j, err)
	}
}

// execute runs the pipeline for one attempt: obtain the synthesis
// artifact (content-store hit or fresh synthesis), reselect under the
// job's own settings, render the deterministic payload. Panics anywhere
// below become retryable errors — one poisoned job must not take a
// worker down.
func (m *Manager) execute(ctx context.Context, j *Job) (payload *ResultPayload, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobs: panic during job %s: %v", j.ID, r)
		}
	}()
	if err := faultinject.Fire("jobs.worker.run"); err != nil {
		return nil, err
	}
	c, err := qasm.Parse(j.QASM)
	if err != nil {
		return nil, fmt.Errorf("jobs: reparse canonical qasm: %w", err)
	}
	cfg, err := m.jobConfig(j.Params)
	if err != nil {
		return nil, fmt.Errorf("jobs: resolve objective: %w", err)
	}
	art, err := m.obtainArtifact(ctx, j, c, cfg)
	if err != nil {
		return nil, err
	}
	res, err := pipeline.Reselect(ctx, art, cfg)
	if err != nil {
		return nil, err
	}
	return renderResult(ctx, j.ID, c, res, j.Params)
}

// obtainArtifact loads the job's synthesis artifact from the content
// store, or synthesizes and stores it. The synthesis runs at the
// artifact's ε (the job's own, except for From-jobs, which rebuild
// their parent's pool), so a rebuilt artifact reselects identically.
func (m *Manager) obtainArtifact(ctx context.Context, j *Job, c *circuit.Circuit, cfg pipeline.Config) (*pipeline.SynthesisArtifact, error) {
	art, err := m.store.load(j.ArtifactKey)
	if err != nil {
		return nil, err
	}
	if art != nil {
		m.mu.Lock()
		m.counters.ArtifactHits++
		m.mu.Unlock()
		return art, nil
	}
	m.mu.Lock()
	m.counters.ArtifactMisses++
	m.mu.Unlock()
	scfg := cfg
	scfg.Epsilon = j.ArtifactEpsilon
	art, err = pipeline.Synthesize(ctx, c, scfg)
	if err != nil {
		return nil, err
	}
	if err := m.store.save(j.ArtifactKey, art); err != nil {
		return nil, err
	}
	return art, nil
}

// finishCancel lands the terminal cancel transition.
func (m *Manager) finishCancel(j *Job) {
	m.txMu.Lock()
	defer m.txMu.Unlock()
	m.transitionLocked(j, record{Op: "cancel", ID: j.ID}, func() {
		j.State = Cancelled
		j.FinishedAt = m.clock()
		m.counters.Cancelled++
	})
}

// failFinal lands a terminal failure.
func (m *Manager) failFinal(j *Job, reason string) {
	m.txMu.Lock()
	m.transitionLocked(j, record{
		Op: "fail", ID: j.ID, Attempt: j.Attempts, Reason: reason, Final: true,
	}, func() {
		j.State = Failed
		j.Error = reason
		j.FinishedAt = m.clock()
		m.counters.Failed++
	})
	m.txMu.Unlock()
	m.pruneAndCompact()
}

// retryOrFail re-queues a transiently failed job with exponential
// backoff + jitter, or fails it terminally once the attempt budget is
// spent.
func (m *Manager) retryOrFail(j *Job, err error) {
	m.mu.Lock()
	attempt := j.Attempts
	m.mu.Unlock()
	if attempt >= m.maxAttempts() {
		m.failFinal(j, fmt.Sprintf("attempt %d/%d failed: %v", attempt, m.maxAttempts(), err))
		return
	}
	m.txMu.Lock()
	m.transitionLocked(j, record{
		Op: "fail", ID: j.ID, Attempt: attempt, Reason: err.Error(),
	}, func() {
		j.State = Queued
		j.Error = err.Error()
		j.notBefore = m.clock().Add(backoffDelay(m.opts.BackoffBase, m.opts.BackoffMax, j.ID, attempt))
		m.counters.Retried++
	})
	m.txMu.Unlock()
	m.q.push(j, false)
}

// Result returns a completed job's payload, recomputing it from the
// artifact store when this process has not rendered it yet (the
// post-restart path) and verifying the recomputation against the SHA
// journaled at completion.
func (m *Manager) Result(ctx context.Context, id string) (*ResultPayload, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrUnknownJob
	}
	if j.State != Done {
		st := j.State
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (job is %s)", ErrNotDone, st)
	}
	if p := m.results[id]; p != nil {
		m.mu.Unlock()
		return p, nil
	}
	snap := *j
	m.mu.Unlock()

	// Recompute path: serialize (recomputes are rare — only the first
	// fetch of each pre-restart job pays one).
	m.resultMu.Lock()
	defer m.resultMu.Unlock()
	m.mu.Lock()
	if p := m.results[id]; p != nil {
		m.mu.Unlock()
		return p, nil
	}
	m.mu.Unlock()

	c, err := qasm.Parse(snap.QASM)
	if err != nil {
		return nil, fmt.Errorf("jobs: reparse canonical qasm: %w", err)
	}
	cfg, err := m.jobConfig(snap.Params)
	if err != nil {
		return nil, fmt.Errorf("jobs: resolve objective: %w", err)
	}
	art, err := m.obtainArtifact(ctx, &snap, c, cfg)
	if err != nil {
		return nil, err
	}
	res, err := pipeline.Reselect(ctx, art, cfg)
	if err != nil {
		return nil, err
	}
	payload, err := renderResult(ctx, id, c, res, snap.Params)
	if err != nil {
		return nil, err
	}
	if snap.ResultSHA != "" && payload.SHA != snap.ResultSHA {
		return nil, fmt.Errorf("jobs: recovered result for %s does not match its journaled content hash (%s != %s)",
			id, payload.SHA, snap.ResultSHA)
	}
	m.mu.Lock()
	m.results[id] = payload
	m.mu.Unlock()
	return payload, nil
}

// pruneAndCompact drops the oldest terminal jobs beyond KeepTerminal
// and compacts the journal once it has outgrown the live set.
func (m *Manager) pruneAndCompact() {
	m.txMu.Lock()
	defer m.txMu.Unlock()
	m.mu.Lock()
	var terminal []*Job
	for _, j := range m.jobs {
		if j.State.Terminal() {
			terminal = append(terminal, j)
		}
	}
	if extra := len(terminal) - m.opts.KeepTerminal; extra > 0 {
		sort.Slice(terminal, func(i, k int) bool { return terminal[i].seq < terminal[k].seq })
		for _, j := range terminal[:extra] {
			delete(m.jobs, j.ID)
			delete(m.results, j.ID)
		}
	}
	live := len(m.jobs)
	if !m.journal.needsCompaction(live) {
		m.mu.Unlock()
		return
	}
	all := make([]*Job, 0, live)
	for _, j := range m.jobs {
		all = append(all, j)
	}
	sort.Slice(all, func(i, k int) bool { return all[i].seq < all[k].seq })
	recs := make([]record, 0, len(all))
	for _, j := range all {
		snap := *j
		recs = append(recs, record{Op: "state", Job: &snap, T: m.clock().UnixNano()})
	}
	m.mu.Unlock()
	m.journal.compact(recs)
}

// Stats snapshots the operational state.
func (m *Manager) Stats() Stats {
	jerr := m.journal.health()
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		QueueDepth:  m.q.depth(),
		Running:     len(m.running),
		WorkersLive: int(m.workersLive.Load()),
		Draining:    m.draining,
		JournalOK:   jerr == nil,
		Counters:    m.counters,
	}
	if jerr != nil {
		s.JournalError = jerr.Error()
	}
	return s
}

// Health returns the journal's first persistence failure, nil while
// every acknowledged transition is durable.
func (m *Manager) Health() error { return m.journal.health() }

// Draining reports whether shutdown has begun (readyz turns 503).
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Close drains and shuts down: admission stops, workers finish their
// in-flight jobs until ctx expires, any still-running jobs are then cut
// loose (journaled as retryable — the next Open re-runs them), queued
// jobs stay journaled, and the journal is fsynced closed.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	m.q.close()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		m.mu.Lock()
		for _, cancel := range m.running {
			cancel()
		}
		m.mu.Unlock()
		<-done
	}
	m.stopRun()
	m.stopPop()
	return m.journal.close()
}
