package jobs

import (
	"testing"
	"time"
)

func TestBackoffDeterministic(t *testing.T) {
	// A restart recomputes the identical schedule: same (id, attempt) →
	// same delay, every time.
	for attempt := 1; attempt <= 5; attempt++ {
		a := backoffDelay(250*time.Millisecond, 30*time.Second, "j-00000007", attempt)
		b := backoffDelay(250*time.Millisecond, 30*time.Second, "j-00000007", attempt)
		if a != b {
			t.Fatalf("attempt %d: %v != %v", attempt, a, b)
		}
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	base, max := 100*time.Millisecond, time.Second
	prev := time.Duration(0)
	for attempt := 1; attempt <= 10; attempt++ {
		d := backoffDelay(base, max, "j-00000001", attempt)
		if d < base {
			t.Fatalf("attempt %d: delay %v below base", attempt, d)
		}
		if d > max+base {
			// Cap plus at most one base of jitter.
			t.Fatalf("attempt %d: delay %v exceeds max+jitter bound", attempt, d)
		}
		floor := base << (attempt - 1)
		if floor > max {
			floor = max
		}
		if d < floor {
			t.Fatalf("attempt %d: delay %v below exponential floor %v", attempt, d, floor)
		}
		if attempt <= 3 && d <= prev {
			t.Fatalf("attempt %d: delay %v did not grow past %v", attempt, d, prev)
		}
		prev = d
	}
}

func TestBackoffJitterDecorrelates(t *testing.T) {
	// Two jobs failing at the same attempt should not retry in lockstep.
	seen := map[time.Duration]bool{}
	for i := 0; i < 16; i++ {
		id := string(rune('a' + i))
		seen[backoffDelay(250*time.Millisecond, 30*time.Second, id, 1)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("only %d distinct delays across 16 ids; jitter too weak", len(seen))
	}
}

func TestBackoffDefendsDegenerateInputs(t *testing.T) {
	if d := backoffDelay(0, 0, "x", 0); d <= 0 {
		t.Fatalf("degenerate inputs produced %v", d)
	}
	// A huge attempt count must not overflow past the cap.
	if d := backoffDelay(time.Second, time.Minute, "x", 500); d > time.Minute+time.Second {
		t.Fatalf("attempt 500: %v exceeds cap", d)
	}
}
