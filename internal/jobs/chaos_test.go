package jobs

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// The chaos suite exercises the crash-safety contract end to end: every
// test constructs (or inherits) a journal in some damaged intermediate
// state and asserts the next Open converges to the right outcome. Run
// it under -race; the whole manager is concurrent.

// countRuns installs a counting hook on the worker-run site.
func countRuns(t *testing.T) *atomic.Int32 {
	t.Helper()
	var n atomic.Int32
	restore := faultinject.Set("jobs.worker.run", func(int) error {
		n.Add(1)
		return nil
	})
	t.Cleanup(restore)
	return &n
}

func TestCrashMidRunRecoversAndCompletes(t *testing.T) {
	opts := testOpts(t)
	src := testQASM(t)

	// Phase 1: a process admits the job and starts running it, then
	// dies. Simulated exactly as the journal would record it: submit +
	// start, never a terminal record. (Workers: -1 keeps the job from
	// actually running before the "crash".)
	setup := opts
	setup.Workers = -1
	m1, err := Open(setup)
	if err != nil {
		t.Fatal(err)
	}
	j, err := m1.Submit(Request{QASM: src})
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.journal.append(record{Op: "start", ID: j.ID, Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Phase 2: restart. The job replays as Running → crashed: one
	// attempt consumed, re-enqueued with backoff, runs to completion.
	runs := countRuns(t)
	m2 := openManager(t, opts)
	if got := m2.Stats().Counters.Recovered; got != 1 {
		t.Fatalf("recovered counter = %d, want 1", got)
	}
	done := waitState(t, m2, j.ID, Done)
	if done.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (crash consumed one)", done.Attempts)
	}
	if runs.Load() != 1 {
		t.Fatalf("run site fired %d times, want 1", runs.Load())
	}
	p, err := m2.Result(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.SHA != done.ResultSHA {
		t.Fatalf("payload SHA %s != journaled %s", p.SHA, done.ResultSHA)
	}
}

func TestCrashLoopExhaustsRetryBudget(t *testing.T) {
	opts := testOpts(t)
	opts.MaxRetries = -1 // one attempt total
	src := testQASM(t)

	setup := opts
	setup.Workers = -1
	m1, err := Open(setup)
	if err != nil {
		t.Fatal(err)
	}
	j, err := m1.Submit(Request{QASM: src})
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.journal.append(record{Op: "start", ID: j.ID, Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	runs := countRuns(t)
	m2 := openManager(t, opts)
	got, ok := m2.Get(j.ID)
	if !ok {
		t.Fatal("job lost")
	}
	if got.State != Failed || !strings.Contains(got.Error, "retry budget exhausted") {
		t.Fatalf("job after crash-loop recovery = %s (%q), want failed/exhausted", got.State, got.Error)
	}
	if runs.Load() != 0 {
		t.Fatalf("exhausted job ran %d times, want 0", runs.Load())
	}
}

func TestRestartDoesNotReExecuteDoneJobs(t *testing.T) {
	opts := testOpts(t)
	src := testQASM(t)

	m1, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	j, err := m1.Submit(Request{QASM: src})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m1, j.ID, Done)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Restart: the done job must replay as done — no re-execution, and
	// its result must recompute from the artifact store bit-for-bit
	// (verified against the journaled SHA inside Result).
	runs := countRuns(t)
	m2 := openManager(t, opts)
	got, ok := m2.Get(j.ID)
	if !ok || got.State != Done || got.ResultSHA != done.ResultSHA {
		t.Fatalf("done job after restart = %+v", got)
	}
	p, err := m2.Result(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.SHA != done.ResultSHA {
		t.Fatalf("recomputed SHA %s != journaled %s", p.SHA, done.ResultSHA)
	}
	if runs.Load() != 0 {
		t.Fatalf("done job re-executed %d times after restart", runs.Load())
	}
	if hits := m2.Stats().Counters.ArtifactHits; hits != 1 {
		t.Fatalf("artifact hits = %d, want 1 (result recompute)", hits)
	}
}

func TestTornJournalTailLosesOnlyTheTornRecord(t *testing.T) {
	opts := testOpts(t)
	src := testQASM(t)

	setup := opts
	setup.Workers = -1
	m1, err := Open(setup)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := m1.Submit(Request{QASM: src})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m1.Submit(Request{QASM: src, Params: Params{Epsilon: 0.03}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Tear the final record (j2's submit) mid-line, as a crash during
	// the write would.
	tearJournalTail(t, opts.Dir, 9)

	m2 := openManager(t, opts)
	if _, ok := m2.Get(j1.ID); !ok {
		t.Fatal("intact record lost with the torn tail")
	}
	if _, ok := m2.Get(j2.ID); ok {
		t.Fatal("torn record replayed")
	}
	// The surviving job still runs to completion.
	waitState(t, m2, j1.ID, Done)
}

func TestStalledWorkerHitsJobDeadline(t *testing.T) {
	opts := testOpts(t)
	restore := faultinject.Set("jobs.worker.run", faultinject.Stall(120*time.Millisecond))
	t.Cleanup(restore)
	m := openManager(t, opts)
	j, err := m.Submit(Request{QASM: testQASM(t), Params: Params{Timeout: 30 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		got, _ := m.Get(j.ID)
		if got.State == Failed {
			if !strings.Contains(got.Error, "deadline") {
				t.Fatalf("failure error = %q, want deadline", got.Error)
			}
			if got.Attempts != 1 {
				t.Fatalf("deadline failure retried (%d attempts); a rerun hits the same wall", got.Attempts)
			}
			return
		}
		if got.State == Done {
			t.Fatal("stalled job completed inside a 30ms deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job never failed")
}

func TestTransientFaultRetriesWithBackoffThenSucceeds(t *testing.T) {
	opts := testOpts(t)
	// First two run attempts fail; the third proceeds.
	var calls atomic.Int32
	restore := faultinject.Set("jobs.worker.run", func(int) error {
		if calls.Add(1) <= 2 {
			return errors.New("injected transient fault")
		}
		return nil
	})
	t.Cleanup(restore)
	m := openManager(t, opts)
	j, err := m.Submit(Request{QASM: testQASM(t)})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, j.ID, Done)
	if done.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", done.Attempts)
	}
	if got := m.Stats().Counters.Retried; got != 2 {
		t.Fatalf("retried counter = %d, want 2", got)
	}
}

func TestPersistentFaultFailsAfterRetryBudget(t *testing.T) {
	opts := testOpts(t)
	opts.MaxRetries = 2 // 3 attempts total
	restore := faultinject.Set("jobs.worker.run", faultinject.FailAlways(errors.New("injected persistent fault")))
	t.Cleanup(restore)
	m := openManager(t, opts)
	j, err := m.Submit(Request{QASM: testQASM(t)})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		got, _ := m.Get(j.ID)
		if got.State == Failed {
			if got.Attempts != 3 {
				t.Fatalf("attempts = %d, want 3", got.Attempts)
			}
			if !strings.Contains(got.Error, "attempt 3/3") {
				t.Fatalf("failure error = %q", got.Error)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job never exhausted its retries")
}

func TestDrainDeadlineRequeuesInFlightJob(t *testing.T) {
	opts := testOpts(t)
	src := testQASM(t)
	restore := faultinject.Set("jobs.worker.run", faultinject.Stall(150*time.Millisecond))
	m1, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	j, err := m1.Submit(Request{QASM: src})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, j.ID, Running)
	// Drain with a deadline far shorter than the stall: the in-flight
	// job is cut loose and journaled as retryable.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := m1.Close(ctx); err != nil {
		t.Fatal(err)
	}
	got, _ := m1.Get(j.ID)
	if got.State != Queued || !strings.Contains(got.Error, "drained") {
		t.Fatalf("in-flight job after drain = %s (%q), want queued/drained", got.State, got.Error)
	}
	restore()

	// The next process picks the job back up and completes it.
	m2 := openManager(t, opts)
	done := waitState(t, m2, j.ID, Done)
	if done.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", done.Attempts)
	}
}

func TestCancelRunningJob(t *testing.T) {
	opts := testOpts(t)
	restore := faultinject.Set("jobs.worker.run", faultinject.Stall(100*time.Millisecond))
	t.Cleanup(restore)
	m := openManager(t, opts)
	j, err := m.Submit(Request{QASM: testQASM(t)})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, Running)
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, j.ID, Cancelled)
	if got.State != Cancelled {
		t.Fatalf("state = %s", got.State)
	}
	if c := m.Stats().Counters.Cancelled; c != 1 {
		t.Fatalf("cancelled counter = %d", c)
	}
}

func TestJournalFailureTurnsUnhealthyAndRefusesSubmits(t *testing.T) {
	opts := testOpts(t)
	opts.Workers = -1
	m, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Close(ctx) // unhealthy journal: Close reports the latched error
	}()
	restore := faultinject.Set("jobs.journal.append", faultinject.FailAlways(errors.New("disk gone")))
	defer restore()

	_, err = m.Submit(Request{QASM: testQASM(t)})
	if err == nil || !strings.Contains(err.Error(), "disk gone") {
		t.Fatalf("submit with dead journal = %v", err)
	}
	if m.Health() == nil {
		t.Fatal("journal failure did not latch unhealthy")
	}
	st := m.Stats()
	if st.JournalOK || st.JournalError == "" {
		t.Fatalf("stats hide the journal failure: %+v", st)
	}
	// The failed submission must not occupy a queue slot.
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth = %d after failed journal append", st.QueueDepth)
	}
}

// tearJournalTail truncates n bytes off the journal to simulate a crash
// mid-append.
func tearJournalTail(t *testing.T, dir string, n int) {
	t.Helper()
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) <= n {
		t.Fatalf("journal too short to tear (%d bytes)", len(data))
	}
	if err := os.WriteFile(path, data[:len(data)-n], 0o644); err != nil {
		t.Fatal(err)
	}
}
