package jobs

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/algos"
	"repro/internal/pipeline"
	"repro/internal/qasm"
)

// testQASM is a small circuit that synthesizes quickly under testPipe.
func testQASM(t *testing.T) string {
	t.Helper()
	return qasm.Write(algos.GHZ(3))
}

func testPipe() pipeline.Config {
	return pipeline.Config{
		BlockSize:        3,
		Epsilon:          0.05,
		MaxSamples:       6,
		AnnealIterations: 150,
		SynthBeam:        2,
		Seed:             1,
	}
}

func testOpts(t *testing.T) Options {
	t.Helper()
	return Options{
		Dir:         t.TempDir(),
		Workers:     2,
		Pipeline:    testPipe(),
		BackoffBase: time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	}
}

func openManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	m, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return m
}

// waitState polls until the job reaches want, failing fast if it lands
// on a different terminal state.
func waitState(t *testing.T, m *Manager, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if j.State == want {
			return j
		}
		if j.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, j.State, j.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	j, _ := m.Get(id)
	t.Fatalf("job %s stuck in %s, want %s", id, j.State, want)
	return Job{}
}

func TestSubmitRunsToDone(t *testing.T) {
	m := openManager(t, testOpts(t))
	j, err := m.Submit(Request{QASM: testQASM(t)})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != Queued || j.ID == "" || j.ArtifactKey == "" {
		t.Fatalf("submitted job = %+v", j)
	}
	// Params must come back fully resolved.
	if j.Params.Epsilon <= 0 || j.Params.BlockSize == 0 || j.Params.Timeout <= 0 {
		t.Fatalf("params not resolved: %+v", j.Params)
	}

	done := waitState(t, m, j.ID, Done)
	if done.ResultSHA == "" || done.Attempts != 1 || done.Error != "" {
		t.Fatalf("done job = %+v", done)
	}
	ctx := context.Background()
	p, err := m.Result(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.SHA != done.ResultSHA {
		t.Fatalf("payload SHA %s != journaled %s", p.SHA, done.ResultSHA)
	}
	if p.BestCNOTs > p.OriginalCNOTs || len(p.Selected) == 0 {
		t.Fatalf("payload = %+v", p)
	}
	st := m.Stats()
	if st.Counters.Submitted != 1 || st.Counters.Done != 1 {
		t.Fatalf("counters = %+v", st.Counters)
	}
}

func TestResubmissionHitsArtifactStore(t *testing.T) {
	m := openManager(t, testOpts(t))
	src := testQASM(t)
	j1, err := m.Submit(Request{QASM: src})
	if err != nil {
		t.Fatal(err)
	}
	d1 := waitState(t, m, j1.ID, Done)
	missesAfterFirst := m.Stats().Counters.ArtifactMisses

	j2, err := m.Submit(Request{QASM: src})
	if err != nil {
		t.Fatal(err)
	}
	d2 := waitState(t, m, j2.ID, Done)
	st := m.Stats()
	if d1.ArtifactKey != d2.ArtifactKey {
		t.Fatalf("identical submissions got different artifact keys %s / %s", d1.ArtifactKey, d2.ArtifactKey)
	}
	if st.Counters.ArtifactMisses != missesAfterFirst {
		t.Fatalf("resubmission re-synthesized (misses %d → %d)", missesAfterFirst, st.Counters.ArtifactMisses)
	}
	if st.Counters.ArtifactHits == 0 {
		t.Fatal("resubmission did not hit the artifact store")
	}
	// Same circuit, same settings → same approximations (IDs differ, so
	// the sealed SHAs differ; the content must not).
	ctx := context.Background()
	p1, err := m.Result(ctx, j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.Result(ctx, j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p1.BestCNOTs != p2.BestCNOTs || len(p1.Selected) != len(p2.Selected) {
		t.Fatalf("resubmission diverged: %+v vs %+v", p1, p2)
	}
	for i := range p1.Selected {
		if p1.Selected[i] != p2.Selected[i] {
			t.Fatalf("selected[%d] diverged", i)
		}
	}
}

func TestFromSweepReselectsParentArtifact(t *testing.T) {
	m := openManager(t, testOpts(t))
	src := testQASM(t)
	parent, err := m.Submit(Request{QASM: src})
	if err != nil {
		t.Fatal(err)
	}
	pd := waitState(t, m, parent.ID, Done)
	misses := m.Stats().Counters.ArtifactMisses

	// Re-sweep the parent's pool under a tighter ε.
	child, err := m.Submit(Request{QASM: src, From: parent.ID, Params: Params{Epsilon: 0.02}})
	if err != nil {
		t.Fatal(err)
	}
	if child.ArtifactKey != pd.ArtifactKey || child.ArtifactEpsilon != pd.ArtifactEpsilon {
		t.Fatalf("child did not inherit parent artifact: %+v vs %+v", child, pd)
	}
	cd := waitState(t, m, child.ID, Done)
	if got := m.Stats().Counters.ArtifactMisses; got != misses {
		t.Fatalf("sweep re-synthesized (misses %d → %d)", misses, got)
	}
	ctx := context.Background()
	cp, err := m.Result(ctx, cd.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Threshold != 0.02 {
		t.Fatalf("child threshold = %g, want 0.02", cp.Threshold)
	}
}

func TestFromValidation(t *testing.T) {
	m := openManager(t, testOpts(t))
	src := testQASM(t)
	if _, err := m.Submit(Request{QASM: src, From: "j-99999999"}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("unknown From = %v, want ErrInvalid", err)
	}
	parent, err := m.Submit(Request{QASM: src})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, parent.ID, Done)
	other := qasm.Write(algos.QFT(3))
	if _, err := m.Submit(Request{QASM: other, From: parent.ID}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("From with different circuit = %v, want ErrInvalid", err)
	}
	if _, err := m.Submit(Request{QASM: src, From: parent.ID, Params: Params{BlockSize: 2}}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("From with different block size = %v, want ErrInvalid", err)
	}
}

func TestSubmitRejectsBadQASM(t *testing.T) {
	m := openManager(t, testOpts(t))
	_, err := m.Submit(Request{QASM: "this is not qasm"})
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("bad qasm = %v, want ErrInvalid", err)
	}
	if got := m.Stats().Counters.Submitted; got != 0 {
		t.Fatalf("rejected submission counted: %d", got)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	opts := testOpts(t)
	opts.Workers = -1 // no workers: jobs stay queued
	m := openManager(t, opts)
	j, err := m.Submit(Request{QASM: testQASM(t)})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Get(j.ID)
	if got.State != Cancelled {
		t.Fatalf("state = %s, want cancelled", got.State)
	}
	if err := m.Cancel(j.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("second cancel = %v, want ErrTerminal", err)
	}
	if _, err := m.Result(context.Background(), j.ID); !errors.Is(err, ErrNotDone) {
		t.Fatalf("result of cancelled job = %v, want ErrNotDone", err)
	}
	if err := m.Cancel("j-404"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel unknown = %v, want ErrUnknownJob", err)
	}
}

func TestQueueFullStormSheds(t *testing.T) {
	opts := testOpts(t)
	opts.Workers = -1
	opts.QueueCap = 4
	opts.TenantCap = 2
	m := openManager(t, opts)
	src := testQASM(t)

	// Tenant cap: a single tenant cannot take the whole queue.
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(Request{QASM: src, Tenant: "greedy"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Submit(Request{QASM: src, Tenant: "greedy"}); !errors.Is(err, ErrTenantFull) {
		t.Fatalf("tenant storm = %v, want ErrTenantFull", err)
	}
	// Other tenants still fit until the global bound.
	if _, err := m.Submit(Request{QASM: src, Tenant: "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Request{QASM: src, Tenant: "c"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Request{QASM: src, Tenant: "d"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow = %v, want ErrQueueFull", err)
	}
	if shed := m.Stats().Counters.Shed; shed != 2 {
		t.Fatalf("shed counter = %d, want 2", shed)
	}
}

func TestConcurrentStormAdmitsExactlyCapacity(t *testing.T) {
	opts := testOpts(t)
	opts.Workers = -1
	opts.QueueCap = 5
	m := openManager(t, opts)
	src := testQASM(t)

	const attempts = 24
	var wg sync.WaitGroup
	errs := make([]error, attempts)
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = m.Submit(Request{QASM: src, Tenant: string(rune('a' + i))})
		}(i)
	}
	wg.Wait()
	admitted, shed := 0, 0
	for _, err := range errs {
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, ErrQueueFull):
			shed++
		default:
			t.Fatalf("unexpected submit error: %v", err)
		}
	}
	if admitted != 5 || shed != attempts-5 {
		t.Fatalf("admitted %d shed %d, want 5/%d — the reserve/journal/push protocol raced", admitted, shed, attempts-5)
	}
	if st := m.Stats(); st.QueueDepth != 5 || st.Counters.Shed != uint64(shed) {
		t.Fatalf("stats after storm: %+v", st)
	}
}

func TestSubmitWhileDrainingRejected(t *testing.T) {
	opts := testOpts(t)
	opts.Workers = -1
	m := openManager(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Request{QASM: testQASM(t)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after close = %v, want ErrDraining", err)
	}
}

func TestResultErrorsBeforeDone(t *testing.T) {
	opts := testOpts(t)
	opts.Workers = -1
	m := openManager(t, opts)
	j, err := m.Submit(Request{QASM: testQASM(t)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Result(context.Background(), j.ID); !errors.Is(err, ErrNotDone) {
		t.Fatalf("result of queued job = %v, want ErrNotDone", err)
	}
	if _, err := m.Result(context.Background(), "j-404"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("result of unknown job = %v, want ErrUnknownJob", err)
	}
}

func TestBackendStatsInResult(t *testing.T) {
	m := openManager(t, testOpts(t))
	j, err := m.Submit(Request{QASM: testQASM(t), Params: Params{Backend: "ideal"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, Done)
	p, err := m.Result(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats == nil || p.Stats.Backend == "" {
		t.Fatalf("expected backend stats, got %+v", p.Stats)
	}
	if p.Stats.TVD < 0 || p.Stats.TVD > 1 {
		t.Fatalf("TVD = %g out of range", p.Stats.TVD)
	}
}

func TestUnknownBackendFailsJob(t *testing.T) {
	opts := testOpts(t)
	opts.MaxRetries = -1 // a bad backend never heals: fail fast
	m := openManager(t, opts)
	j, err := m.Submit(Request{QASM: testQASM(t), Params: Params{Backend: "no-such-backend"}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		got, _ := m.Get(j.ID)
		if got.State == Failed {
			if !strings.Contains(got.Error, "no-such-backend") {
				t.Fatalf("failure error = %q", got.Error)
			}
			return
		}
		if got.State == Done {
			t.Fatal("job with unknown backend completed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job never failed")
}
