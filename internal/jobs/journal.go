package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/faultinject"
)

// The job journal is an append-only, checksummed record of every job
// transition, one record per line:
//
//	<16 hex digits> <JSON payload>\n
//
// — the same discipline as internal/ucache's disk journal: the hex
// prefix is the FNV-1a 64 checksum of the payload, the first line is a
// header pinning the format version, and a record whose checksum or
// JSON does not verify is skipped at replay (a crash can only tear the
// final line; bit rot can only lose single transitions, and the replay
// degrades gracefully — see rebuild in manager.go). Every append is
// fsynced before Submit/Done is acknowledged: an acknowledged
// transition survives power loss.
//
// Record vocabulary (op → fields):
//
//	submit  job                      job admitted to the queue
//	start   id, attempt              worker began attempt N
//	done    id, artifact, aeps, sha  completed; result addressable
//	fail    id, attempt, reason,     attempt N failed; final=true is
//	        final                    terminal, otherwise a retry follows
//	cancel  id                       explicit cancellation
//	state   job, state, attempt...   compaction snapshot of one job
//
// Compaction rewrites the journal as header + one "state" record per
// retained job (tmp file, fsync, atomic rename) once the record count
// exceeds compactFactor × the live-job count.

// journalVersion pins the record schema; an unknown version is moved
// aside and a fresh journal started (jobs are not portable across
// foreign versions). v2 added the optional Params.Objective field; a v1
// journal is a strict subset (every record decodes with the field
// empty, which means "inherit the base objective"), so v1 journals
// replay in place — see journalVersionMin.
const journalVersion = 2

// journalVersionMin is the oldest header version replayed in place.
// Versions in [journalVersionMin, journalVersion] are forward-compatible:
// newer versions only added omitempty record fields whose zero values
// reproduce the old behavior byte-for-byte.
const journalVersionMin = 1

// journalName is the journal file name inside the data directory.
const journalName = "jobs.journal"

// compactFactor triggers compaction when the journal holds more than
// this many records per retained job (min compactMin records).
const (
	compactFactor = 6
	compactMin    = 256
)

// syncJournal is the fsync seam (swap in tests to observe or fail the
// durability point).
var syncJournal = func(f *os.File) error { return f.Sync() }

type journalHeader struct {
	V int `json:"v"`
}

// record is one journal line. Op selects which fields are meaningful.
type record struct {
	Op      string `json:"op"`
	T       int64  `json:"t,omitempty"` // unix nanos, telemetry only
	ID      string `json:"id,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Final   bool   `json:"final,omitempty"`
	Reason  string `json:"reason,omitempty"`
	// Artifact/AEps/SHA ride on done (and state) records.
	Artifact string  `json:"artifact,omitempty"`
	AEps     float64 `json:"aeps,omitempty"`
	SHA      string  `json:"sha,omitempty"`
	// Job rides on submit and state records; State on state records.
	Job   *Job  `json:"job,omitempty"`
	State State `json:"state,omitempty"`
}

// journal is the durable side of a Manager.
type journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	records int   // body records since last rewrite (live + superseded)
	err     error // first persistence failure; surfaced by health/close
}

// openJournal opens (or creates) the journal under dir and returns the
// replayable records of the existing body. A missing file, an empty
// file, or a version-mismatched header starts fresh (the old journal is
// preserved as .old for post-mortems); torn or corrupt body lines are
// skipped.
func openJournal(dir string) (*journal, []record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("jobs: create data dir: %w", err)
	}
	j := &journal{path: filepath.Join(dir, journalName)}

	data, err := os.ReadFile(j.path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("jobs: read journal: %w", err)
	}
	recs, ok := parseJournal(data)
	if len(data) > 0 && !ok {
		// Foreign or corrupt header: keep the bytes for inspection, but
		// never trust them as job state.
		if err := os.Rename(j.path, j.path+".old"); err != nil && !os.IsNotExist(err) {
			return nil, nil, fmt.Errorf("jobs: move aside bad journal: %w", err)
		}
	}
	if len(data) == 0 || !ok {
		if err := j.rewrite(nil); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: open journal: %w", err)
	}
	j.f = f
	j.records = len(recs)
	return j, recs, nil
}

// parseJournal splits journal bytes into verified records. ok reports
// whether the header verified and named a replayable version (current
// or a compatible predecessor); body lines that fail their checksum or
// JSON decode are skipped.
func parseJournal(data []byte) ([]record, bool) {
	lines := bytes.Split(data, []byte{'\n'})
	if len(lines) == 0 {
		return nil, false
	}
	payload, ok := verifyLine(lines[0])
	if !ok {
		return nil, false
	}
	var h journalHeader
	if json.Unmarshal(payload, &h) != nil || h.V < journalVersionMin || h.V > journalVersion {
		return nil, false
	}
	var recs []record
	for _, line := range lines[1:] {
		if len(line) == 0 {
			continue
		}
		payload, ok := verifyLine(line)
		if !ok {
			continue // torn/corrupt record: skip, keep replaying
		}
		var rec record
		if json.Unmarshal(payload, &rec) != nil {
			continue
		}
		recs = append(recs, rec)
	}
	return recs, true
}

// append journals one record: checksummed line, write, fsync. The first
// failure latches (health turns unhealthy) and is returned to the
// caller so an acknowledgement is never sent for an undurable
// transition.
func (j *journal) append(rec record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if j.f == nil {
		j.err = fmt.Errorf("jobs: journal closed")
		return j.err
	}
	if err := faultinject.Fire("jobs.journal.append"); err != nil {
		j.err = fmt.Errorf("jobs: append record: %w", err)
		return j.err
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		j.err = fmt.Errorf("jobs: encode record: %w", err)
		return j.err
	}
	if _, err := j.f.Write(checksumLine(payload)); err != nil {
		j.err = fmt.Errorf("jobs: append record: %w", err)
		return j.err
	}
	if err := syncJournal(j.f); err != nil {
		j.err = fmt.Errorf("jobs: sync journal: %w", err)
		return j.err
	}
	j.records++
	return nil
}

// rewrite replaces the journal with header + the given records, fsynced
// before the atomic rename (the compaction path; nil recs initializes
// an empty journal). The append handle, if open, is reopened on the new
// file.
func (j *journal) rewrite(recs []record) error {
	var buf bytes.Buffer
	head, err := json.Marshal(journalHeader{V: journalVersion})
	if err != nil {
		return fmt.Errorf("jobs: encode header: %w", err)
	}
	buf.Write(checksumLine(head))
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("jobs: encode record: %w", err)
		}
		buf.Write(checksumLine(payload))
	}
	tmp := j.path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: write journal: %w", err)
	}
	if _, err := tf.Write(buf.Bytes()); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobs: write journal: %w", err)
	}
	if err := syncJournal(tf); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobs: sync journal: %w", err)
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: close journal: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: replace journal: %w", err)
	}
	if j.f != nil {
		j.f.Close()
		f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			j.f = nil
			return fmt.Errorf("jobs: reopen journal: %w", err)
		}
		j.f = f
	}
	j.records = len(recs)
	return nil
}

// compact rewrites the journal as one state record per job when the
// body has outgrown the live set.
func (j *journal) compact(recs []record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if err := j.rewrite(recs); err != nil {
		j.err = err
		return err
	}
	return nil
}

// needsCompaction reports whether the body record count has outgrown
// the given live-job count.
func (j *journal) needsCompaction(liveJobs int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	bound := compactFactor * liveJobs
	if bound < compactMin {
		bound = compactMin
	}
	return j.records > bound
}

// health returns the first persistence failure, or nil while the
// journal is durable.
func (j *journal) health() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// close fsyncs and releases the journal file, reporting the first
// persistence failure encountered over the journal's lifetime.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return j.err
	}
	f := j.f
	j.f = nil
	if err := syncJournal(f); j.err == nil && err != nil {
		j.err = fmt.Errorf("jobs: sync journal: %w", err)
	}
	if err := f.Close(); j.err == nil && err != nil {
		j.err = fmt.Errorf("jobs: close journal: %w", err)
	}
	return j.err
}

// checksumLine renders "<fnv64a hex> <payload>\n".
func checksumLine(payload []byte) []byte {
	h := fnv.New64a()
	h.Write(payload)
	out := make([]byte, 0, len(payload)+18)
	out = fmt.Appendf(out, "%016x ", h.Sum64())
	out = append(out, payload...)
	return append(out, '\n')
}

// verifyLine splits a journal line into its payload and verifies the
// checksum prefix.
func verifyLine(line []byte) ([]byte, bool) {
	if len(line) < 18 || line[16] != ' ' {
		return nil, false
	}
	var sum uint64
	if _, err := fmt.Sscanf(string(line[:16]), "%016x", &sum); err != nil {
		return nil, false
	}
	payload := line[17:]
	h := fnv.New64a()
	h.Write(payload)
	if h.Sum64() != sum {
		return nil, false
	}
	return payload, true
}
