package jobs

import (
	"container/heap"
	"context"
	"time"

	"sync"

	"repro/internal/budget"
)

// queue is the bounded, priority-ordered admission queue. Two heaps:
// ready (by priority desc, then submission order) feeds workers;
// delayed (by notBefore) holds backed-off retries until they mature.
// Admission enforces the global and per-tenant bounds; recovery and
// retry pushes bypass them (a journaled job is never shed).
type queue struct {
	mu        sync.Mutex
	cond      *sync.Cond
	capacity  int
	tenantCap int
	byTenant  map[string]int
	reserved  int            // admission slots held between reserve and push
	resTenant map[string]int // per-tenant share of reserved
	ready     readyHeap
	delayed   delayHeap
	closed    bool
	now       func() time.Time
}

func newQueue(capacity, tenantCap int, now func() time.Time) *queue {
	q := &queue{
		capacity:  capacity,
		tenantCap: tenantCap,
		byTenant:  map[string]int{},
		resTenant: map[string]int{},
		now:       now,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// reserve claims an admission slot for a tenant before the submission
// is journaled, so the bound check and the eventual push are atomic
// with respect to concurrent submitters. Call push (or release) with
// the same tenant afterwards.
func (q *queue) reserve(tenant string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.depthLocked()+q.reserved >= q.capacity {
		return ErrQueueFull
	}
	if q.byTenant[tenant]+q.resTenant[tenant] >= q.tenantCap {
		return ErrTenantFull
	}
	q.reserved++
	q.resTenant[tenant]++
	return nil
}

// release returns a reserved slot without pushing (journal append
// failed).
func (q *queue) release(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.unreserveLocked(tenant)
}

func (q *queue) unreserveLocked(tenant string) {
	if q.reserved > 0 {
		q.reserved--
	}
	if q.resTenant[tenant] > 0 {
		q.resTenant[tenant]--
		if q.resTenant[tenant] == 0 {
			delete(q.resTenant, tenant)
		}
	}
}

// push enqueues a job, consuming the caller's reservation when reserved
// is true. Unreserved pushes (recovery replays, retry re-entries) are
// admitted unconditionally: they re-enter work the journal already
// promised.
func (q *queue) push(j *Job, consumeReservation bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if consumeReservation {
		q.unreserveLocked(j.Tenant)
	}
	q.byTenant[j.Tenant]++
	if j.notBefore.After(q.now()) {
		heap.Push(&q.delayed, j)
	} else {
		heap.Push(&q.ready, j)
	}
	q.cond.Broadcast()
}

// pop blocks until a job is ready (maturing delayed retries as their
// backoff expires), the queue closes (ErrQueueClosed via close), or ctx
// ends (typed budget error). Closing wins over remaining items: a
// draining manager must stop picking up new work.
func (q *queue) pop(ctx context.Context) (*Job, error) {
	stop := context.AfterFunc(ctx, func() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	})
	defer stop()

	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil, errQueueClosed
		}
		if err := budget.Check(ctx); err != nil {
			return nil, err
		}
		now := q.now()
		for q.delayed.Len() > 0 && !q.delayed[0].notBefore.After(now) {
			heap.Push(&q.ready, heap.Pop(&q.delayed).(*Job))
		}
		if q.ready.Len() > 0 {
			j := heap.Pop(&q.ready).(*Job)
			q.decTenantLocked(j.Tenant)
			return j, nil
		}
		var timer *time.Timer
		if q.delayed.Len() > 0 {
			d := q.delayed[0].notBefore.Sub(now)
			timer = time.AfterFunc(d, func() {
				q.mu.Lock()
				q.cond.Broadcast()
				q.mu.Unlock()
			})
		}
		q.cond.Wait()
		if timer != nil {
			timer.Stop()
		}
	}
}

// remove deletes a queued job by ID (the cancel path) and reports
// whether it was found.
func (q *queue) remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, j := range q.ready {
		if j.ID == id {
			heap.Remove(&q.ready, i)
			q.decTenantLocked(j.Tenant)
			return true
		}
	}
	for i, j := range q.delayed {
		if j.ID == id {
			heap.Remove(&q.delayed, i)
			q.decTenantLocked(j.Tenant)
			return true
		}
	}
	return false
}

func (q *queue) decTenantLocked(tenant string) {
	if q.byTenant[tenant] > 1 {
		q.byTenant[tenant]--
	} else {
		delete(q.byTenant, tenant)
	}
}

// depth returns the number of queued jobs (ready + delayed).
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depthLocked()
}

func (q *queue) depthLocked() int { return q.ready.Len() + q.delayed.Len() }

// close wakes every pop with errQueueClosed; queued jobs stay journaled
// and are recovered by the next Open.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// errQueueClosed is internal: workers treat it as "stop".
var errQueueClosed = errQueueClosedType{}

type errQueueClosedType struct{}

func (errQueueClosedType) Error() string { return "job queue closed" }

// readyHeap orders runnable jobs by priority (higher first), then
// submission sequence (FIFO within a priority).
type readyHeap []*Job

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, k int) bool {
	if h[i].Priority != h[k].Priority {
		return h[i].Priority > h[k].Priority
	}
	return h[i].seq < h[k].seq
}
func (h readyHeap) Swap(i, k int) { h[i], h[k] = h[k], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *readyHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// delayHeap orders backed-off jobs by maturity time.
type delayHeap []*Job

func (h delayHeap) Len() int { return len(h) }
func (h delayHeap) Less(i, k int) bool {
	if !h[i].notBefore.Equal(h[k].notBefore) {
		return h[i].notBefore.Before(h[k].notBefore)
	}
	return h[i].seq < h[k].seq
}
func (h delayHeap) Swap(i, k int) { h[i], h[k] = h[k], h[i] }
func (h *delayHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *delayHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
