package jobs

import (
	"hash/fnv"
	"time"
)

// backoffDelay returns how long to hold a job back before retry attempt
// n (n counts the attempts already consumed, so the first retry passes
// n=1): base·2^(n-1) capped at max, plus a deterministic jitter in
// [0, base) derived from (id, n). The jitter decorrelates a thundering
// herd of jobs that failed together (a crash recovery re-enqueues every
// running job at once) without sacrificing reproducibility — a restart
// recomputes the identical schedule, so recovery tests and incident
// forensics see the same timeline the crashed process would have.
func backoffDelay(base, max time.Duration, id string, attempt int) time.Duration {
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	if max <= 0 {
		max = 30 * time.Second
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt; i++ {
		if d >= max/2 {
			d = max
			break
		}
		d *= 2
	}
	if d > max {
		d = max
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	var b [2]byte
	b[0] = byte(attempt)
	b[1] = byte(attempt >> 8)
	h.Write(b[:])
	jitter := time.Duration(h.Sum64() % uint64(base))
	return d + jitter
}
