package jobs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/backend"
	"repro/internal/circuit"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/qasm"
	"repro/internal/sim"
)

// maxStatsQubits bounds the dense simulation behind the optional
// backend TVD/JSD stats; larger circuits skip the report.
const maxStatsQubits = 12

// SelectedApprox is one selected approximation in a result payload.
type SelectedApprox struct {
	QASM       string  `json:"qasm"`
	CNOTs      int     `json:"cnots"`
	EpsilonSum float64 `json:"epsilon_sum"`
}

// BackendStats is the optional ensemble-fidelity report computed on the
// job's requested backend.
type BackendStats struct {
	Backend string  `json:"backend"`
	Shots   int     `json:"shots"`
	TVD     float64 `json:"tvd"`
	JSD     float64 `json:"jsd"`
}

// ResultPayload is the deterministic, servable output of a completed
// job. Every field is a pure function of (canonical QASM, Params), so
// the payload's SHA — journaled at completion — re-verifies a payload
// recomputed from the artifact store after a restart bit-for-bit.
// Wall-clock timings deliberately live on the job status, not here.
type ResultPayload struct {
	ID            string           `json:"id"`
	OriginalCNOTs int              `json:"original_cnots"`
	BestCNOTs     int              `json:"best_cnots"`
	Threshold     float64          `json:"threshold"`
	Blocks        int              `json:"blocks"`
	Degradations  int              `json:"degradations"`
	Selected      []SelectedApprox `json:"selected"`
	Stats         *BackendStats    `json:"stats,omitempty"`
	SHA           string           `json:"sha"`
}

// renderResult flattens a pipeline result into the servable payload and
// seals it with its content hash (computed over the payload with SHA
// blanked, so verification re-hashes the same bytes).
func renderResult(ctx context.Context, id string, orig *circuit.Circuit, res *pipeline.Result, p Params) (*ResultPayload, error) {
	out := &ResultPayload{
		ID:            id,
		OriginalCNOTs: orig.CNOTCount(),
		BestCNOTs:     res.BestCNOTs(),
		Threshold:     res.Threshold,
		Blocks:        len(res.Blocks),
		Degradations:  len(res.Degradations),
		Selected:      make([]SelectedApprox, len(res.Selected)),
	}
	for i, a := range res.Selected {
		out.Selected[i] = SelectedApprox{
			QASM:       qasm.Write(a.Circuit),
			CNOTs:      a.CNOTs,
			EpsilonSum: a.EpsilonSum,
		}
	}
	if p.Backend != "" && orig.NumQubits <= maxStatsQubits {
		be, err := backend.Get(p.Backend)
		if err != nil {
			return nil, fmt.Errorf("jobs: backend %q: %w", p.Backend, err)
		}
		if max := be.Capabilities().MaxQubits; max > 0 && orig.NumQubits > max {
			return nil, fmt.Errorf("jobs: backend %q supports at most %d qubits, circuit has %d",
				p.Backend, max, orig.NumQubits)
		}
		truth := sim.Probabilities(orig)
		ens, err := res.EnsembleProbabilitiesCtx(ctx, backend.AsRunnerCtx(be, p.Shots, p.Seed), 0)
		if err != nil {
			return nil, fmt.Errorf("jobs: ensemble on %q: %w", p.Backend, err)
		}
		out.Stats = &BackendStats{
			Backend: be.Name(),
			Shots:   p.Shots,
			TVD:     metrics.TVD(truth, ens),
			JSD:     metrics.JSD(truth, ens),
		}
	}
	sha, err := out.contentSHA()
	if err != nil {
		return nil, err
	}
	out.SHA = sha
	return out, nil
}

// contentSHA hashes the payload's canonical JSON with SHA blanked.
func (r *ResultPayload) contentSHA() (string, error) {
	shadow := *r
	shadow.SHA = ""
	data, err := json.Marshal(&shadow)
	if err != nil {
		return "", fmt.Errorf("jobs: encode result: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
