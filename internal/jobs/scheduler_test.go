package jobs

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/qasm"
)

func TestDefaultsInstallSharedScheduler(t *testing.T) {
	o := Options{Workers: 4}
	o.defaults()
	if o.Pipeline.Scheduler == nil {
		t.Fatal("Workers>0 manager has no shared scheduler")
	}
	if !o.Pipeline.Overlap {
		t.Fatal("Workers>0 manager does not enable the overlap path")
	}
	if got := o.Pipeline.Scheduler.Size(); got != runtime.NumCPU() {
		t.Fatalf("default pool size = %d, want NumCPU = %d", got, runtime.NumCPU())
	}

	sized := Options{Workers: 4, Pipeline: pipeline.Config{Parallelism: 3}}
	sized.defaults()
	if got := sized.Pipeline.Scheduler.Size(); got != 3 {
		t.Fatalf("Parallelism=3 pool size = %d, want 3", got)
	}

	// A caller-provided scheduler is kept, not replaced.
	own := par.NewPool(2)
	custom := Options{Workers: 4, Pipeline: pipeline.Config{Scheduler: own}}
	custom.defaults()
	if custom.Pipeline.Scheduler != own {
		t.Fatal("caller-provided scheduler was replaced")
	}

	// Workerless (inspection) managers keep the staged path and the
	// proportional Parallelism split.
	inspect := Options{Workers: -1}
	inspect.defaults()
	if inspect.Pipeline.Scheduler != nil || inspect.Pipeline.Overlap {
		t.Fatalf("Workers=-1 manager got scheduler=%v overlap=%v, want none",
			inspect.Pipeline.Scheduler, inspect.Pipeline.Overlap)
	}
	if inspect.Pipeline.Parallelism < 1 {
		t.Fatalf("Parallelism = %d, want >= 1", inspect.Pipeline.Parallelism)
	}
}

// TestSharedSchedulerMatchesStagedResults submits jobs through the
// manager's shared-scheduler overlap path and checks every payload is
// bit-identical to a direct staged (no scheduler) pipeline run of the
// same resolved config — the jobs-level version of the pipeline's
// overlap-vs-staged golden tests.
func TestSharedSchedulerMatchesStagedResults(t *testing.T) {
	m := openManager(t, testOpts(t))
	if m.opts.Pipeline.Scheduler == nil || !m.opts.Pipeline.Overlap {
		t.Fatalf("manager pipeline = scheduler %v overlap %v, want shared scheduler + overlap",
			m.opts.Pipeline.Scheduler, m.opts.Pipeline.Overlap)
	}

	src := testQASM(t)
	const jobs = 3
	ids := make([]string, jobs)
	for i := range ids {
		j, err := m.Submit(Request{QASM: src, Tenant: "t"})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = j.ID
	}

	ctx := context.Background()
	for _, id := range ids {
		done := waitState(t, m, id, Done)
		got, err := m.Result(ctx, id)
		if err != nil {
			t.Fatal(err)
		}

		cfg, err := m.jobConfig(done.Params)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Scheduler = nil
		cfg.Overlap = false
		c, err := qasm.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := pipeline.RunCtx(ctx, c, cfg)
		if err != nil {
			t.Fatal(err)
		}

		if got.BestCNOTs != ref.BestCNOTs() || got.Blocks != len(ref.Blocks) ||
			got.Threshold != ref.Threshold || len(got.Selected) != len(ref.Selected) {
			t.Fatalf("job %s payload %+v does not match staged run (best=%d blocks=%d thr=%v M=%d)",
				id, got, ref.BestCNOTs(), len(ref.Blocks), ref.Threshold, len(ref.Selected))
		}
		for i, s := range got.Selected {
			if want := qasm.Write(ref.Selected[i].Circuit); s.QASM != want {
				t.Fatalf("job %s sample %d QASM differs from staged run", id, i)
			}
		}
	}
}
