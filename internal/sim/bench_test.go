package sim

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/circuit"
)

func benchCircuit(n, ops int) *circuit.Circuit {
	rng := rand.New(rand.NewSource(7))
	c := circuit.New(n)
	for i := 0; i < ops; i++ {
		switch rng.Intn(3) {
		case 0:
			c.RY(rng.Intn(n), rng.Float64()*math.Pi)
		case 1:
			c.RZ(rng.Intn(n), rng.Float64()*math.Pi)
		default:
			a := rng.Intn(n)
			bq := (a + 1 + rng.Intn(n-1)) % n
			c.CX(a, bq)
		}
	}
	return c
}

func BenchmarkRun12Qubits(b *testing.B) {
	c := benchCircuit(12, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(c)
	}
}

func BenchmarkUnitary4Qubits(b *testing.B) {
	c := benchCircuit(4, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Unitary(c)
	}
}

// BenchmarkUnitaryWorkers compares serial vs parallel column evolution at
// a size above the fan-out threshold (8 qubits, dim 256).
func BenchmarkUnitaryWorkers(b *testing.B) {
	c := benchCircuit(8, 60)
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("parallelism=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				UnitaryWorkers(c, workers)
			}
		})
	}
}

func BenchmarkApplyCX10Qubits(b *testing.B) {
	c := circuit.New(10)
	c.CX(3, 7)
	state := ZeroState(10)
	op := c.Ops[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApplyOp(state, 10, op)
	}
}
