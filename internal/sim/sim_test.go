package sim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/linalg"
)

const tol = 1e-10

func TestBellState(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	c.CX(0, 1)
	state := Run(c)
	// (|00> + |11>)/sqrt2
	inv := math.Sqrt2 / 2
	if cmplx.Abs(state[0]-complex(inv, 0)) > tol ||
		cmplx.Abs(state[3]-complex(inv, 0)) > tol ||
		cmplx.Abs(state[1]) > tol || cmplx.Abs(state[2]) > tol {
		t.Errorf("Bell state = %v", state)
	}
}

func TestGHZ(t *testing.T) {
	c := circuit.New(3)
	c.H(0)
	c.CX(0, 1)
	c.CX(1, 2)
	p := Probabilities(c)
	if math.Abs(p[0]-0.5) > tol || math.Abs(p[7]-0.5) > tol {
		t.Errorf("GHZ probabilities = %v", p)
	}
}

func TestXFlipsQubitOrdering(t *testing.T) {
	// X on qubit 0 must flip the least significant bit.
	c := circuit.New(2)
	c.X(0)
	state := Run(c)
	if cmplx.Abs(state[1]-1) > tol {
		t.Errorf("X on q0 gave %v, want |01> (index 1)", state)
	}
	c2 := circuit.New(2)
	c2.X(1)
	state2 := Run(c2)
	if cmplx.Abs(state2[2]-1) > tol {
		t.Errorf("X on q1 gave %v, want |10> (index 2)", state2)
	}
}

func TestCXControlTargetOrientation(t *testing.T) {
	// CX(control=0, target=1) on |01> (q0=1) must give |11>.
	c := circuit.New(2)
	c.X(0)
	c.CX(0, 1)
	state := Run(c)
	if cmplx.Abs(state[3]-1) > tol {
		t.Errorf("CX(0,1)X(0)|00> = %v, want index 3", state)
	}
	// and with control=1 (which is 0) nothing happens.
	c2 := circuit.New(2)
	c2.X(0)
	c2.CX(1, 0)
	state2 := Run(c2)
	if cmplx.Abs(state2[1]-1) > tol {
		t.Errorf("CX(1,0)X(0)|00> = %v, want index 1", state2)
	}
}

func TestToffoli(t *testing.T) {
	c := circuit.New(3)
	c.X(0)
	c.X(1)
	c.CCX(0, 1, 2)
	state := Run(c)
	if cmplx.Abs(state[7]-1) > tol {
		t.Errorf("CCX|011> = %v, want |111>", state)
	}
	// Not triggered when one control is 0.
	c2 := circuit.New(3)
	c2.X(0)
	c2.CCX(0, 1, 2)
	state2 := Run(c2)
	if cmplx.Abs(state2[1]-1) > tol {
		t.Errorf("CCX|001> = %v, want unchanged", state2)
	}
}

func TestUnitaryMatchesDirectProduct(t *testing.T) {
	// Build the same circuit's unitary via Kron/Mul by hand and compare.
	c := circuit.New(2)
	c.H(0)
	c.CX(0, 1)
	got := Unitary(c)

	h := linalg.FromRows([][]complex128{
		{complex(math.Sqrt2/2, 0), complex(math.Sqrt2/2, 0)},
		{complex(math.Sqrt2/2, 0), complex(-math.Sqrt2/2, 0)},
	})
	// H on qubit 0 (LSB) = I ⊗ H in the (q1,q0) big-endian matrix layout.
	hFull := linalg.Kron(linalg.Identity(2), h)
	// CX with control q0 (LSB), target q1: maps |01>→|11>, |11>→|01>.
	cxFull := linalg.FromRows([][]complex128{
		{1, 0, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
		{0, 1, 0, 0},
	})
	want := linalg.Mul(cxFull, hFull)
	if !linalg.EqualApprox(got, want, tol) {
		t.Errorf("Unitary =\n%v\nwant\n%v", got, want)
	}
}

func TestUnitaryTimesStateMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := randomCircuit(3, 20, rng)
	u := Unitary(c)
	init := linalg.RandomState(8, rng)
	direct := RunFrom(c, init)
	viaU := linalg.ApplyMatrix(u, init)
	for i := range direct {
		if cmplx.Abs(direct[i]-viaU[i]) > 1e-9 {
			t.Fatalf("Run and Unitary disagree at %d: %v vs %v", i, direct[i], viaU[i])
		}
	}
}

func TestInverseCircuitUndoes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := randomCircuit(3, 25, rng)
	inv := c.Inverse()
	full := c.Clone()
	full.MustAppendCircuit(inv, nil)
	u := Unitary(full)
	if !linalg.EqualApprox(u, linalg.Identity(8), 1e-8) {
		t.Error("C · C^-1 != I")
	}
}

func TestRunFromLengthCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong state length")
		}
	}()
	RunFrom(circuit.New(2), linalg.NewVector(3))
}

func TestApplyKGeneralKernelMatchesSpecialized(t *testing.T) {
	// Apply a 2-qubit random unitary via both apply2 (2 listed qubits)
	// and applyK (forced by a wrapper matrix on 3 qubits with identity).
	rng := rand.New(rand.NewSource(3))
	m := linalg.RandomUnitary(4, rng)
	state1 := linalg.RandomState(8, rng)
	state2 := state1.Copy()
	ApplyMatrixOp(state1, 3, m, []int{2, 0})
	// Same thing via a 3-qubit matrix m ⊗ I acting on qubits [2,0,1].
	big := linalg.Kron(m, linalg.Identity(2))
	ApplyMatrixOp(state2, 3, big, []int{2, 0, 1})
	for i := range state1 {
		if cmplx.Abs(state1[i]-state2[i]) > 1e-9 {
			t.Fatalf("kernels disagree at %d", i)
		}
	}
}

func TestPropSimulationPreservesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCircuit(4, 30, r)
		return math.Abs(Run(c).Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPropUnitaryIsUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCircuit(3, 15, r)
		return Unitary(c).IsUnitary(1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// randomCircuit builds a random circuit over a small gate alphabet.
func randomCircuit(n, ops int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < ops; i++ {
		switch rng.Intn(6) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.RZ(rng.Intn(n), rng.Float64()*2*math.Pi)
		case 2:
			c.RY(rng.Intn(n), rng.Float64()*2*math.Pi)
		case 3:
			c.T(rng.Intn(n))
		case 4, 5:
			a := rng.Intn(n)
			b := rng.Intn(n)
			for b == a {
				b = rng.Intn(n)
			}
			c.CX(a, b)
		}
	}
	return c
}

func TestUnitaryWorkersInvariant(t *testing.T) {
	// Parallel column evolution must be bit-identical to the serial path
	// for every worker count, above and below the fan-out threshold.
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{3, 6} {
		c := randomCircuit(n, 40, rng)
		ref := UnitaryWorkers(c, 1)
		for _, workers := range []int{2, 4, 0} {
			got := UnitaryWorkers(c, workers)
			for i := range ref.Data {
				if got.Data[i] != ref.Data[i] {
					t.Fatalf("n=%d workers=%d: element %d differs", n, workers, i)
				}
			}
		}
	}
}

func TestApplyMatrixOpWideDispatchMatchesTab(t *testing.T) {
	// The k=3 and k=4 cases route to the unrolled linalg kernels, which
	// agree with the generic ScatterTab path bit-for-bit.
	rng := rand.New(rand.NewSource(11))
	const n = 5
	for _, qs := range [][]int{{4, 1, 0}, {0, 2, 3}, {3, 4, 1, 0}, {0, 1, 2, 4}} {
		m := linalg.RandomUnitary(1<<len(qs), rng)
		state := linalg.RandomState(1<<n, rng)
		viaTab := state.Copy()
		ApplyMatrixOp(state, n, m, qs)
		linalg.ApplyVecTab(viaTab, m.Data, linalg.NewScatterTab(qs))
		for i := range state {
			if state[i] != viaTab[i] {
				t.Fatalf("qubits %v entry %d: %v != %v", qs, i, state[i], viaTab[i])
			}
		}
	}
}
