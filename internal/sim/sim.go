// Package sim implements an ideal statevector simulator for the circuit IR.
// Gates are applied with bit-indexed kernels (no full-matrix expansion), so
// simulating an n-qubit circuit costs O(gates · 2^n). Full circuit unitaries
// are built column-by-column by evolving each basis state; this is only used
// for small circuits (synthesis blocks and ground-truth references).
package sim

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/gate"
	"repro/internal/linalg"
	"repro/internal/par"
)

// ZeroState returns |0...0> on n qubits.
func ZeroState(n int) linalg.Vector {
	return linalg.BasisVector(1<<n, 0)
}

// ApplyOp applies one gate operation to the n-qubit state in place.
func ApplyOp(state linalg.Vector, n int, op circuit.Op) {
	spec := op.Spec()
	m := spec.Build(op.Params)
	ApplyMatrixOp(state, n, m, op.Qubits)
}

// ApplyMatrixOp applies an arbitrary 2^k x 2^k matrix to the listed qubits
// of an n-qubit state in place. The first listed qubit is the most
// significant local bit, matching the gate-matrix convention.
func ApplyMatrixOp(state linalg.Vector, n int, m *linalg.Matrix, qubits []int) {
	if len(state) != 1<<n {
		panic(fmt.Sprintf("sim: state length %d != 2^%d", len(state), n))
	}
	switch len(qubits) {
	case 1:
		apply1(state, m, qubits[0])
	case 2:
		apply2(state, m, qubits[0], qubits[1])
	case 3:
		linalg.ApplyVec3(state, (*[64]complex128)(m.Data), qubits[0], qubits[1], qubits[2])
	case 4:
		linalg.ApplyVec4(state, (*[256]complex128)(m.Data), qubits[0], qubits[1], qubits[2], qubits[3])
	default:
		applyK(state, m, qubits)
	}
}

// apply1, apply2 and applyK delegate to the shared kernel layer in
// internal/linalg (the same unrolled kernels the synthesizer uses on full
// matrices).
func apply1(state linalg.Vector, m *linalg.Matrix, q int) {
	linalg.ApplyVec1(state, (*[4]complex128)(m.Data), q)
}

func apply2(state linalg.Vector, m *linalg.Matrix, qHi, qLo int) {
	linalg.ApplyVec2(state, (*[16]complex128)(m.Data), qHi, qLo)
}

func applyK(state linalg.Vector, m *linalg.Matrix, qubits []int) {
	linalg.ApplyVecTab(state, m.Data, linalg.NewScatterTab(qubits))
}

// Run evolves |0...0> through the circuit and returns the final state.
func Run(c *circuit.Circuit) linalg.Vector {
	return RunFrom(c, ZeroState(c.NumQubits))
}

// RunFrom evolves the given initial state (copied) through the circuit.
func RunFrom(c *circuit.Circuit, initial linalg.Vector) linalg.Vector {
	if len(initial) != 1<<c.NumQubits {
		panic(fmt.Sprintf("sim: initial state length %d != 2^%d", len(initial), c.NumQubits))
	}
	state := initial.Copy()
	for _, op := range c.Ops {
		ApplyOp(state, c.NumQubits, op)
	}
	return state
}

// Probabilities returns the output distribution of the circuit from |0...0>.
func Probabilities(c *circuit.Circuit) []float64 {
	return Run(c).Probabilities()
}

// parallelColsMin is the smallest matrix dimension at which column
// evolution fans out across goroutines; below it (synthesis blocks are
// ≤ 4 qubits, dim ≤ 16) the per-column work cannot amortize the
// scheduling overhead.
const parallelColsMin = 32

// Unitary returns the full 2^n x 2^n unitary of the circuit. Cost is
// O(gates · 4^n); intended for n ≲ 12. Columns of dim ≥ 32 matrices are
// evolved concurrently with runtime.NumCPU() workers; use UnitaryWorkers
// to bound the fan-out. The result is bit-identical for every worker
// count (columns are independent).
func Unitary(c *circuit.Circuit) *linalg.Matrix {
	return UnitaryWorkers(c, 0)
}

// UnitaryWorkers is Unitary with an explicit worker-goroutine cap
// (0 or negative selects runtime.NumCPU(), 1 forces the serial path).
func UnitaryWorkers(c *circuit.Circuit, workers int) *linalg.Matrix {
	n := c.NumQubits
	dim := 1 << n
	// Build each gate matrix once up front; columns then share them
	// read-only, whether evolved serially or concurrently.
	mats := make([]*linalg.Matrix, len(c.Ops))
	for i, op := range c.Ops {
		mats[i] = op.Spec().Build(op.Params)
	}
	if dim < parallelColsMin {
		workers = 1
	}
	cols := make([]linalg.Vector, dim)
	par.ForEach(workers, dim, func(j int) {
		col := linalg.BasisVector(dim, j)
		for i, op := range c.Ops {
			ApplyMatrixOp(col, n, mats[i], op.Qubits)
		}
		cols[j] = col
	})
	out := linalg.New(dim, dim)
	for j := 0; j < dim; j++ {
		for i := 0; i < dim; i++ {
			out.Set(i, j, cols[j][i])
		}
	}
	return out
}

// OpMatrix returns the gate matrix for an op (convenience wrapper).
func OpMatrix(op circuit.Op) *linalg.Matrix {
	return gate.MustLookup(op.Name).Build(op.Params)
}
