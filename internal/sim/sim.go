// Package sim implements an ideal statevector simulator for the circuit IR.
// Gates are applied with bit-indexed kernels (no full-matrix expansion), so
// simulating an n-qubit circuit costs O(gates · 2^n). Full circuit unitaries
// are built column-by-column by evolving each basis state; this is only used
// for small circuits (synthesis blocks and ground-truth references).
package sim

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/gate"
	"repro/internal/linalg"
	"repro/internal/par"
)

// ZeroState returns |0...0> on n qubits.
func ZeroState(n int) linalg.Vector {
	return linalg.BasisVector(1<<n, 0)
}

// ApplyOp applies one gate operation to the n-qubit state in place.
func ApplyOp(state linalg.Vector, n int, op circuit.Op) {
	spec := op.Spec()
	m := spec.Build(op.Params)
	ApplyMatrixOp(state, n, m, op.Qubits)
}

// ApplyMatrixOp applies an arbitrary 2^k x 2^k matrix to the listed qubits
// of an n-qubit state in place. The first listed qubit is the most
// significant local bit, matching the gate-matrix convention.
func ApplyMatrixOp(state linalg.Vector, n int, m *linalg.Matrix, qubits []int) {
	if len(state) != 1<<n {
		panic(fmt.Sprintf("sim: state length %d != 2^%d", len(state), n))
	}
	switch len(qubits) {
	case 1:
		apply1(state, m, qubits[0])
	case 2:
		apply2(state, m, qubits[0], qubits[1])
	default:
		applyK(state, n, m, qubits)
	}
}

func apply1(state linalg.Vector, m *linalg.Matrix, q int) {
	bit := 1 << q
	a, b := m.Data[0], m.Data[1]
	c, d := m.Data[2], m.Data[3]
	for i := 0; i < len(state); i++ {
		if i&bit != 0 {
			continue
		}
		j := i | bit
		v0, v1 := state[i], state[j]
		state[i] = a*v0 + b*v1
		state[j] = c*v0 + d*v1
	}
}

func apply2(state linalg.Vector, m *linalg.Matrix, qHi, qLo int) {
	hi, lo := 1<<qHi, 1<<qLo
	mask := hi | lo
	var in, out [4]complex128
	for i := 0; i < len(state); i++ {
		if i&mask != 0 {
			continue
		}
		idx := [4]int{i, i | lo, i | hi, i | hi | lo}
		for l := 0; l < 4; l++ {
			in[l] = state[idx[l]]
		}
		for r := 0; r < 4; r++ {
			row := m.Data[r*4 : r*4+4]
			out[r] = row[0]*in[0] + row[1]*in[1] + row[2]*in[2] + row[3]*in[3]
		}
		for l := 0; l < 4; l++ {
			state[idx[l]] = out[l]
		}
	}
}

func applyK(state linalg.Vector, n int, m *linalg.Matrix, qubits []int) {
	k := len(qubits)
	dim := 1 << k
	// pos[j] = global bit position of local bit j (local bit k-1 is the
	// first listed qubit).
	pos := make([]int, k)
	for i, q := range qubits {
		pos[k-1-i] = q
	}
	var mask int
	for _, p := range pos {
		mask |= 1 << p
	}
	idx := make([]int, dim)
	in := make([]complex128, dim)
	for base := 0; base < len(state); base++ {
		if base&mask != 0 {
			continue
		}
		for l := 0; l < dim; l++ {
			g := base
			for j := 0; j < k; j++ {
				if l&(1<<j) != 0 {
					g |= 1 << pos[j]
				}
			}
			idx[l] = g
			in[l] = state[g]
		}
		for r := 0; r < dim; r++ {
			row := m.Data[r*dim : (r+1)*dim]
			var s complex128
			for l, v := range in {
				if row[l] != 0 {
					s += row[l] * v
				}
			}
			state[idx[r]] = s
		}
	}
}

// Run evolves |0...0> through the circuit and returns the final state.
func Run(c *circuit.Circuit) linalg.Vector {
	return RunFrom(c, ZeroState(c.NumQubits))
}

// RunFrom evolves the given initial state (copied) through the circuit.
func RunFrom(c *circuit.Circuit, initial linalg.Vector) linalg.Vector {
	if len(initial) != 1<<c.NumQubits {
		panic(fmt.Sprintf("sim: initial state length %d != 2^%d", len(initial), c.NumQubits))
	}
	state := initial.Copy()
	for _, op := range c.Ops {
		ApplyOp(state, c.NumQubits, op)
	}
	return state
}

// Probabilities returns the output distribution of the circuit from |0...0>.
func Probabilities(c *circuit.Circuit) []float64 {
	return Run(c).Probabilities()
}

// parallelColsMin is the smallest matrix dimension at which column
// evolution fans out across goroutines; below it (synthesis blocks are
// ≤ 4 qubits, dim ≤ 16) the per-column work cannot amortize the
// scheduling overhead.
const parallelColsMin = 32

// Unitary returns the full 2^n x 2^n unitary of the circuit. Cost is
// O(gates · 4^n); intended for n ≲ 12. Columns of dim ≥ 32 matrices are
// evolved concurrently with runtime.NumCPU() workers; use UnitaryWorkers
// to bound the fan-out. The result is bit-identical for every worker
// count (columns are independent).
func Unitary(c *circuit.Circuit) *linalg.Matrix {
	return UnitaryWorkers(c, 0)
}

// UnitaryWorkers is Unitary with an explicit worker-goroutine cap
// (0 or negative selects runtime.NumCPU(), 1 forces the serial path).
func UnitaryWorkers(c *circuit.Circuit, workers int) *linalg.Matrix {
	n := c.NumQubits
	dim := 1 << n
	// Build each gate matrix once up front; columns then share them
	// read-only, whether evolved serially or concurrently.
	mats := make([]*linalg.Matrix, len(c.Ops))
	for i, op := range c.Ops {
		mats[i] = op.Spec().Build(op.Params)
	}
	if dim < parallelColsMin {
		workers = 1
	}
	cols := make([]linalg.Vector, dim)
	par.ForEach(workers, dim, func(j int) {
		col := linalg.BasisVector(dim, j)
		for i, op := range c.Ops {
			ApplyMatrixOp(col, n, mats[i], op.Qubits)
		}
		cols[j] = col
	})
	out := linalg.New(dim, dim)
	for j := 0; j < dim; j++ {
		for i := 0; i < dim; i++ {
			out.Set(i, j, cols[j][i])
		}
	}
	return out
}

// OpMatrix returns the gate matrix for an op (convenience wrapper).
func OpMatrix(op circuit.Op) *linalg.Matrix {
	return gate.MustLookup(op.Name).Build(op.Params)
}
