package quest

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/hamiltonian"
	"repro/internal/kak"
	"repro/internal/linalg"
	"repro/internal/mitigation"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

// This file exposes the supporting substrates that complement the core
// pipeline: the execution backend layer, Pauli-string Hamiltonians and
// Trotterization, KAK two-qubit analysis, and measurement-error
// mitigation.

// Backend is a named circuit-execution target (ideal simulator, noisy
// simulator, routed device model) with declared capabilities; see
// internal/backend for the interface contract.
type Backend = backend.Backend

// BackendCapabilities describes a backend's execution model.
type BackendCapabilities = backend.Capabilities

// Backends lists the registered backend names ("ideal", "noisy",
// "manila", ...).
func Backends() []string { return backend.Names() }

// GetBackend resolves a backend spec of the form "name" or "name:arg":
// "ideal", "noisy" (the paper's 1% error point), "noisy:0.005", "manila".
func GetBackend(spec string) (Backend, error) { return backend.Get(spec) }

// BackendRunner adapts a backend to the Runner signature consumed by
// Result.EnsembleProbabilities, fixing shots and seed.
func BackendRunner(b Backend, shots int, seed int64) Runner {
	return backend.AsRunner(b, shots, seed)
}

// BackendRunnerCtx adapts a backend to the context-aware RunnerCtx
// consumed by Result.EnsembleProbabilitiesCtx.
func BackendRunnerCtx(b Backend, shots int, seed int64) RunnerCtx {
	return backend.AsRunnerCtx(b, shots, seed)
}

// Objective is a pluggable selection objective scored by the dual
// annealing engine; see Config.Objective.
type Objective = pipeline.Objective

// SelectionObjective resolves a selection-objective spec: "cnot" (the
// paper's normalized CNOT count, the default), "fidelity[:<backend>]"
// (predicted device fidelity under the named backend's noise profile,
// default "manila"), or "hybrid:<w>[:<backend>]".
func SelectionObjective(spec string) (Objective, error) { return backend.Objective(spec) }

// Hamiltonian is a sum of weighted Pauli strings; build spin models with
// NewTFIMHamiltonian and friends or assemble terms directly.
type Hamiltonian = hamiltonian.Hamiltonian

// NewTFIMHamiltonian returns H = -J Σ Z_i Z_{i+1} - g Σ X_i on an open
// chain (the paper's TFIM workload family).
func NewTFIMHamiltonian(n int, j, g float64) *Hamiltonian { return hamiltonian.TFIM(n, j, g) }

// NewHeisenbergHamiltonian returns H = -J Σ (XX+YY+ZZ) - g Σ Z.
func NewHeisenbergHamiltonian(n int, j, g float64) *Hamiltonian {
	return hamiltonian.Heisenberg(n, j, g)
}

// NewXYHamiltonian returns H = -J Σ (XX+YY).
func NewXYHamiltonian(n int, j float64) *Hamiltonian { return hamiltonian.XY(n, j) }

// Trotterize returns a first-order Trotter circuit for exp(-iH·steps·dt).
func Trotterize(h *Hamiltonian, steps int, dt float64) *Circuit { return h.Trotter(steps, dt) }

// Trotterize2 returns a second-order (Strang) Trotter circuit.
func Trotterize2(h *Hamiltonian, steps int, dt float64) *Circuit { return h.Trotter2(steps, dt) }

// TwoQubitMinCNOTs returns how many CNOTs (0-3) a two-qubit circuit's
// unitary provably requires, via the Makhlin-invariant classification.
func TwoQubitMinCNOTs(c *Circuit) (int, error) {
	u := sim.Unitary(c)
	if u.Rows != 4 {
		return 0, errNotTwoQubit(c.NumQubits)
	}
	return kak.MinCNOTs(u), nil
}

// TwoQubitWeylCoordinates returns the canonical-class coordinates (a,b,c)
// of a two-qubit circuit's unitary, folded into the Weyl chamber.
func TwoQubitWeylCoordinates(c *Circuit) (a, b, cc float64, err error) {
	u := sim.Unitary(c)
	if u.Rows != 4 {
		return 0, 0, 0, errNotTwoQubit(c.NumQubits)
	}
	return kak.WeylCoordinates(u)
}

func errNotTwoQubit(n int) error {
	return fmt.Errorf("quest: KAK analysis needs a 2-qubit circuit, got %d qubits", n)
}

// MitigateReadout corrects a measured distribution for a symmetric
// per-qubit readout error e (matching NoiseModel.ReadoutError).
func MitigateReadout(p []float64, numQubits int, e float64) ([]float64, error) {
	m, err := mitigation.NewUniform(numQubits, e)
	if err != nil {
		return nil, err
	}
	return m.Apply(p)
}

// ExpectationEnergy returns <ψ|H|ψ> for the circuit's ideal output state.
func ExpectationEnergy(h *Hamiltonian, c *Circuit) float64 {
	return h.Expectation(sim.Run(c))
}

// CircuitUnitary returns the circuit's full unitary matrix (small
// circuits only; cost grows as 4^n).
func CircuitUnitary(c *Circuit) *linalg.Matrix { return sim.Unitary(c) }
