// Package quest is the public API of this repository: a from-scratch Go
// reproduction of QUEST (Patel et al., ASPLOS 2022), a procedure that
// systematically approximates quantum circuits to reduce their CNOT gate
// count and thereby increase output fidelity on noisy quantum hardware.
//
// The pipeline (see DESIGN.md for the full architecture):
//
//  1. Partition the circuit into blocks of at most Config.BlockSize qubits
//     with a single-scan partitioner.
//  2. Approximately synthesize every block with a LEAP-style bottom-up
//     compiler, harvesting many candidate circuits across CNOT counts.
//  3. Select up to Config.MaxSamples mathematically "dissimilar" low-CNOT
//     full-circuit approximations with a dual annealing engine driven by
//     the paper's Algorithm 1; the per-block process distances bound the
//     full-circuit Hilbert-Schmidt distance (Sec. 3.8 theorem).
//  4. Average the output distributions of the selected approximations.
//
// Quick start:
//
//	c, _ := quest.GenerateBenchmark("tfim", 4)
//	res, _ := quest.Approximate(c, quest.Config{})
//	fmt.Println("CNOTs:", c.CNOTCount(), "->", res.BestCNOTs())
//	out, _ := res.EnsembleProbabilities(quest.IdealRunner())
package quest

import (
	"context"

	"repro/internal/algos"
	"repro/internal/backend"
	"repro/internal/budget"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/qasm"
	"repro/internal/sim"
	"repro/internal/transpile"
)

// Typed pipeline-termination errors. Every error returned by ApproximateCtx
// (and the other *Ctx entry points) because a budget ran out wraps one of
// these, so callers can classify failures with errors.Is:
//
//	res, err := quest.ApproximateCtx(ctx, c, cfg)
//	if errors.Is(err, quest.ErrDeadline) { ... } // timed out
var (
	// ErrDeadline marks work aborted because a deadline or per-stage time
	// budget expired.
	ErrDeadline = budget.ErrDeadline
	// ErrCancelled marks work aborted because the context was cancelled.
	ErrCancelled = budget.ErrCancelled
	// ErrNoConvergence marks an optimizer or synthesis attempt that
	// exhausted its iteration budget without reaching its target. It is
	// retryable: the pipeline re-seeds and widens the search before
	// degrading the block.
	ErrNoConvergence = budget.ErrNoConvergence
)

// Circuit is the quantum circuit IR: an ordered list of gate operations.
// Build circuits with New plus the gate methods (H, CX, RZ, ...), or parse
// OpenQASM 2.0 with ParseQASM.
type Circuit = circuit.Circuit

// Config controls the QUEST pipeline; the zero value selects paper-like
// defaults. See the field documentation in internal/core.
type Config = core.Config

// Result is the pipeline outcome: the per-block approximation sets, the
// selected dissimilar approximations and the stage timing breakdown.
type Result = core.Result

// Approximation is one selected full-circuit approximation.
type Approximation = core.Approximation

// Degradation records a block that fell back to its exact (transpiled)
// sub-circuit after synthesis retries were exhausted or a budget expired.
// Degraded runs still produce a valid Result; Result.Degradations lists
// every substitution.
type Degradation = core.Degradation

// Runner executes a circuit and returns an output distribution.
type Runner = core.Runner

// RunnerCtx is a context-aware Runner; see Result.EnsembleProbabilitiesCtx.
type RunnerCtx = core.RunnerCtx

// NoiseModel is a stochastic Pauli gate-error model.
type NoiseModel = noise.Model

// Device models a NISQ machine (error model + coupling constraints).
type Device = noise.Device

// New returns an empty circuit on n qubits.
func New(n int) *Circuit { return circuit.New(n) }

// ParseQASM parses an OpenQASM 2.0 program.
func ParseQASM(src string) (*Circuit, error) { return qasm.Parse(src) }

// WriteQASM renders a circuit as an OpenQASM 2.0 program.
func WriteQASM(c *Circuit) string { return qasm.Write(c) }

// Approximate runs the full QUEST pipeline on a circuit.
func Approximate(c *Circuit, cfg Config) (*Result, error) { return core.Run(c, cfg) }

// ApproximateCtx runs the full QUEST pipeline under a context. The run
// stops at the earliest of ctx's deadline/cancellation and cfg.Timeout;
// per-block synthesis is additionally bounded by cfg.BlockTimeout and
// retried up to cfg.MaxRestarts times. On budget exhaustion the error
// wraps ErrDeadline or ErrCancelled — unless cfg.AllowDegraded is set, in
// which case unfinished blocks degrade to their exact sub-circuits and a
// valid Result is returned with the substitutions in Result.Degradations.
func ApproximateCtx(ctx context.Context, c *Circuit, cfg Config) (*Result, error) {
	return core.RunCtx(ctx, c, cfg)
}

// GenerateBenchmark builds one of the paper's Table-1 benchmark circuits
// ("adder", "heisenberg", "hlf", "qft", "qaoa", "multiplier", "tfim",
// "vqe", "xy") on approximately n qubits.
func GenerateBenchmark(name string, n int) (*Circuit, error) { return algos.Generate(name, n) }

// Benchmarks lists the benchmark names accepted by GenerateBenchmark.
func Benchmarks() []string { return algos.Names() }

// Simulate returns the ideal output distribution of the circuit from
// |0...0>.
func Simulate(c *Circuit) []float64 { return sim.Probabilities(c) }

// UniformNoise returns the paper's Pauli noise model at level p (two-qubit
// error p, one-qubit error p/10, readout error p).
func UniformNoise(p float64) NoiseModel { return noise.Uniform(p) }

// SimOptions configures a noisy run: shots, trajectory budget, seed, and
// the worker-goroutine cap (alias of noise.Options; see the field docs
// there). Output is deterministic in (Shots, Trajectories, Seed) and
// bit-identical for every Parallelism value.
type SimOptions = noise.Options

// SimulateNoisy runs the circuit under a noise model with the given number
// of measurement shots (0 for exact trajectory-averaged probabilities) and
// seed, and returns the output distribution.
func SimulateNoisy(c *Circuit, m NoiseModel, shots int, seed int64) []float64 {
	return m.Run(c, noise.Options{Shots: shots, Seed: seed})
}

// SimulateNoisyOpts is SimulateNoisy with full control over the trajectory
// budget and the parallel fan-out.
func SimulateNoisyOpts(c *Circuit, m NoiseModel, opts SimOptions) []float64 {
	return m.Run(c, opts)
}

// SimulateNoisyCtx is SimulateNoisyOpts under a context: the trajectory
// loop aborts on cancellation or deadline with an error wrapping
// ErrCancelled or ErrDeadline.
func SimulateNoisyCtx(ctx context.Context, c *Circuit, m NoiseModel, opts SimOptions) ([]float64, error) {
	return m.RunCtx(ctx, c, opts)
}

// Manila returns the synthetic IBMQ-Manila-class 5-qubit device model used
// by the hardware experiments.
func Manila() *Device { return noise.Manila() }

// RunOnDevice routes the circuit onto the device and simulates it under
// the device noise model, returning the distribution in logical qubit
// order.
func RunOnDevice(d *Device, c *Circuit, shots int, seed int64) ([]float64, error) {
	return d.Run(c, noise.Options{Shots: shots, Seed: seed})
}

// RunOnDeviceOpts is RunOnDevice with full control over the trajectory
// budget and the parallel fan-out.
func RunOnDeviceOpts(d *Device, c *Circuit, opts SimOptions) ([]float64, error) {
	return d.Run(c, opts)
}

// RunOnDeviceCtx is RunOnDeviceOpts under a context: routing happens
// up front and the trajectory loop aborts on cancellation or deadline
// with an error wrapping ErrCancelled or ErrDeadline.
func RunOnDeviceCtx(ctx context.Context, d *Device, c *Circuit, opts SimOptions) ([]float64, error) {
	return d.RunCtx(ctx, c, opts)
}

// OptimizeQiskitStyle applies the Qiskit-like transpiler baseline (lower
// to {u3, cx}, fuse, cancel) used as the comparison point in the paper.
func OptimizeQiskitStyle(c *Circuit) *Circuit { return transpile.Optimize(c) }

// LowerToBasis rewrites the circuit into the {u3, cx} basis without
// further optimization; the paper's Baseline CNOT counts are defined on
// this form.
func LowerToBasis(c *Circuit) *Circuit { return transpile.Lower(c) }

// TVD returns the total variation distance between two distributions.
func TVD(p, q []float64) float64 { return metrics.TVD(p, q) }

// JSD returns the Jensen-Shannon distance between two distributions.
func JSD(p, q []float64) float64 { return metrics.JSD(p, q) }

// IdealRunner returns a Runner backed by the ideal simulator backend.
func IdealRunner() Runner {
	return backend.AsRunner(backend.Ideal(), 0, 0)
}

// NoisyRunner returns a Runner backed by the noisy simulator backend.
func NoisyRunner(m NoiseModel, shots int, seed int64) Runner {
	return backend.AsRunner(backend.FromModel("noisy", m), shots, seed)
}

// DeviceRunner returns a Runner that routes onto and runs a device model
// backend.
func DeviceRunner(d *Device, shots int, seed int64) Runner {
	return backend.AsRunner(backend.FromDevice(d), shots, seed)
}
