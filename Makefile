# Verification targets. `make verify` is what CI runs on every PR: the
# concurrency introduced by the parallel trajectory/synthesis engines is
# always exercised under the race detector. The -short path stays under
# ~5 minutes on a few cores; `make verify-full` runs the complete suite.

GO ?= go

.PHONY: build vet test test-race verify verify-full bench bench-smoke bench-pipeline bench-fidelity cache-smoke serve-smoke corpus-smoke fidelity-smoke bench-corpus bench-serve fmt-check lint lint-ignores lint-smoke

# Packages holding the hot-path benchmarks recorded in BENCH_synth.json:
# objective/gradient evaluation and synthesis (synth), gate-apply kernels
# (linalg), cached-vs-cold synthesis (ucache), the simulator and noise
# engines, plus the streaming partitioner scan.
BENCH_PKGS = ./internal/synth ./internal/linalg ./internal/ucache ./internal/noise ./internal/sim ./internal/partition

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race -short ./...

# `make lint` runs the project's own static-analysis suite
# (cmd/questlint): determinism, context propagation, budget-error
# wrapping, zero-value sentinels, float-equality hygiene, plus the
# flow-sensitive concurrency/durability checks (goroleak, lockflow,
# fsyncorder, poolnonest). Zero findings is the invariant; suppress only
# with `// lint:ignore <check> <reason>` (see DESIGN.md §4e) and audit
# the suppressions with `make lint-ignores` — a directive whose check no
# longer fires is itself reported as stale. CI sets LINT_FLAGS=-github
# so findings land as PR annotations.
LINT_FLAGS ?=

lint:
	$(GO) run ./cmd/questlint $(LINT_FLAGS) ./...

lint-ignores:
	$(GO) run ./cmd/questlint -list-ignores

# `make lint-smoke` runs questlint against the seeded-violation module
# (cmd/questlint/testdata/badmod) and asserts every check fires: a
# silently-broken analyzer fails this target even though the real tree
# stays green.
lint-smoke:
	@out=$$($(GO) run ./cmd/questlint -root cmd/questlint/testdata/badmod); st=$$?; \
	[ $$st -eq 1 ] || { echo "lint-smoke: exit $$st, want 1"; echo "$$out"; exit 1; }; \
	for check in determinism floateq goroleak lockflow fsyncorder poolnonest; do \
		echo "$$out" | grep -q " $$check: " || \
			{ echo "lint-smoke: $$check did not fire on the seeded module"; echo "$$out"; exit 1; }; \
	done; \
	echo "$$out" | grep -q "stale lint:ignore" || \
		{ echo "lint-smoke: stale-suppression audit did not fire"; echo "$$out"; exit 1; }; \
	echo "lint-smoke: all checks fired on the seeded module"

verify: fmt-check vet lint build test-race

verify-full: vet lint build
	$(GO) test -race -timeout 30m ./...

# `make bench` refreshes the "after" section of BENCH_synth.json (the
# machine-readable perf trajectory across PRs); earlier sections are left
# in place for comparison. BENCH_SECTION overrides the section name.
BENCH_SECTION ?= after

bench:
	$(GO) test -bench=. -benchmem -run=^$$ $(BENCH_PKGS) | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -out BENCH_synth.json -section $(BENCH_SECTION)

# One-iteration compile-and-run pass over every benchmark; CI uses it to
# catch kernel/benchmark regressions without paying for a full bench run.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ $(BENCH_PKGS) ./internal/pipeline

# `make cache-smoke` exercises the disk-backed synthesis cache across two
# real processes: a cold run populates the journal in a temp dir, then a
# second process must be served entirely from it (zero misses).
cache-smoke:
	@dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/quest -algo tfim -n 4 -synth-cache-dir "$$dir" >/dev/null || exit 1; \
	out=$$($(GO) run ./cmd/quest -algo tfim -n 4 -synth-cache-dir "$$dir") || exit 1; \
	echo "$$out" | grep 'synthesis cache:'; \
	echo "$$out" | grep -q 'synthesis cache: [1-9][0-9]* hits, 0 misses' || \
		{ echo "cache-smoke: warm run was not served from the disk cache"; exit 1; }

# `make serve-smoke` proves questd's crash-safety contract across real
# processes. A reference server computes a job cleanly; a second server
# (with a chaos stall that holds workers mid-job) is kill -9'd while the
# job is running, restarted on the same data directory, and must recover
# the journaled job and serve a byte-for-byte identical result.
serve-smoke:
	@dir=$$(mktemp -d); refpid=; crashpid=; recpid=; \
	trap 'kill $$refpid $$crashpid $$recpid 2>/dev/null; rm -rf "$$dir"' EXIT; \
	$(GO) build -o "$$dir/questd" ./cmd/questd || exit 1; \
	$(GO) build -o "$$dir/questload" ./cmd/questload || exit 1; \
	\
	"$$dir/questd" -dir "$$dir/ref-data" -addr 127.0.0.1:0 -addr-file "$$dir/ref.addr" \
		>"$$dir/ref.log" 2>&1 & refpid=$$!; \
	for i in $$(seq 50); do [ -s "$$dir/ref.addr" ] && break; sleep 0.1; done; \
	[ -s "$$dir/ref.addr" ] || { echo "serve-smoke: reference questd never listened"; cat "$$dir/ref.log"; exit 1; }; \
	id=$$("$$dir/questload" -addr @"$$dir/ref.addr" -submit -algo qft -qubits 5) || exit 1; \
	"$$dir/questload" -addr @"$$dir/ref.addr" -wait "$$id" >/dev/null || { cat "$$dir/ref.log"; exit 1; }; \
	"$$dir/questload" -addr @"$$dir/ref.addr" -fetch "$$id" >"$$dir/ref.json" || exit 1; \
	kill $$refpid 2>/dev/null; refpid=; \
	\
	"$$dir/questd" -dir "$$dir/crash-data" -addr 127.0.0.1:0 -addr-file "$$dir/crash.addr" \
		-chaos-stall 60s >"$$dir/crash1.log" 2>&1 & crashpid=$$!; \
	for i in $$(seq 50); do [ -s "$$dir/crash.addr" ] && break; sleep 0.1; done; \
	[ -s "$$dir/crash.addr" ] || { echo "serve-smoke: crash questd never listened"; cat "$$dir/crash1.log"; exit 1; }; \
	id2=$$("$$dir/questload" -addr @"$$dir/crash.addr" -submit -algo qft -qubits 5) || exit 1; \
	[ "$$id" = "$$id2" ] || { echo "serve-smoke: job ids diverged ($$id vs $$id2)"; exit 1; }; \
	sleep 1; \
	kill -9 $$crashpid 2>/dev/null; wait $$crashpid 2>/dev/null; crashpid=; \
	\
	rm -f "$$dir/crash.addr"; \
	"$$dir/questd" -dir "$$dir/crash-data" -addr 127.0.0.1:0 -addr-file "$$dir/crash.addr" \
		>"$$dir/crash2.log" 2>&1 & recpid=$$!; \
	for i in $$(seq 50); do [ -s "$$dir/crash.addr" ] && break; sleep 0.1; done; \
	[ -s "$$dir/crash.addr" ] || { echo "serve-smoke: restarted questd never listened"; cat "$$dir/crash2.log"; exit 1; }; \
	grep -q '1 jobs recovered' "$$dir/crash2.log" || \
		{ echo "serve-smoke: restart did not recover the in-flight job"; cat "$$dir/crash2.log"; exit 1; }; \
	"$$dir/questload" -addr @"$$dir/crash.addr" -wait "$$id2" >/dev/null || { cat "$$dir/crash2.log"; exit 1; }; \
	"$$dir/questload" -addr @"$$dir/crash.addr" -fetch "$$id2" >"$$dir/crash.json" || exit 1; \
	cmp "$$dir/ref.json" "$$dir/crash.json" || \
		{ echo "serve-smoke: recovered result differs from the clean reference run"; exit 1; }; \
	echo "serve-smoke: kill -9 mid-job recovered to a byte-identical result"

# `make corpus-smoke` compiles the committed big-circuit corpus
# (examples/circuits/corpus) twice through the overlapped batch driver:
# pass 1 must finish with zero degradations, pass 2 must be served
# entirely from the warm shared synthesis cache (hits > 0, misses = 0).
# -samples 4 keeps it CI-cheap; the full numbers come from bench-corpus.
corpus-smoke:
	@out=$$($(GO) run ./cmd/quest -corpus examples/circuits/corpus -passes 2 -samples 4) || exit 1; \
	echo "$$out" | grep '^corpus-total'; \
	echo "$$out" | grep '^corpus-total' | grep 'pass=1 ' | grep -q 'degradations=0 ' || \
		{ echo "corpus-smoke: pass 1 had degradations"; exit 1; }; \
	echo "$$out" | grep '^corpus-total' | grep 'pass=2 ' | \
		grep -q 'degradations=0 cache_hits=[1-9][0-9]* cache_misses=0 ' || \
		{ echo "corpus-smoke: pass 2 was not served entirely from the warm shared cache"; exit 1; }

# `make bench-corpus` records the cross-circuit scheduling comparison in
# BENCH_corpus.json: "staged-serial" models the pre-batch driver (one
# quest invocation per file — serial, staged pipeline, cold private
# cache per compilation), "overlap" is the batch driver (streaming
# partition+synthesis, shared scheduler + one shared synthesis cache).
# The workload is two passes over the corpus (the iterative
# compile-inspect-recompile loop the driver exists for): within a pass
# the shared cache deduplicates blocks across circuits, and across
# passes it keeps serving warm — the per-invocation driver starts cold
# every time, which is exactly the architecture gap being measured.
bench-corpus:
	$(GO) run ./cmd/quest -corpus examples/circuits/corpus -corpus-mode staged-serial -passes 2 | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -corpus -out BENCH_corpus.json -section staged-serial
	$(GO) run ./cmd/quest -corpus examples/circuits/corpus -corpus-mode overlap -passes 2 | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -corpus -out BENCH_corpus.json -section overlap

# `make bench-serve` records questd's serving behaviour under load into
# BENCH_serve.json: latency percentiles/histogram plus shed and retry
# counters from a concurrent batch against a small queue.
bench-serve:
	@dir=$$(mktemp -d); pid=; trap 'kill $$pid 2>/dev/null; rm -rf "$$dir"' EXIT; \
	$(GO) build -o "$$dir/questd" ./cmd/questd || exit 1; \
	$(GO) build -o "$$dir/questload" ./cmd/questload || exit 1; \
	"$$dir/questd" -dir "$$dir/data" -addr 127.0.0.1:0 -addr-file "$$dir/addr" -queue-cap 8 \
		>"$$dir/questd.log" 2>&1 & pid=$$!; \
	for i in $$(seq 50); do [ -s "$$dir/addr" ] && break; sleep 0.1; done; \
	[ -s "$$dir/addr" ] || { echo "bench-serve: questd never listened"; cat "$$dir/questd.log"; exit 1; }; \
	"$$dir/questload" -addr @"$$dir/addr" -n 32 -c 16 -algo qft -qubits 5 -out BENCH_serve.json

# `make fidelity-smoke` pins the objective refactor's compatibility
# contract across a real CLI run: with -objective cnot the quest output
# (timing lines stripped) must be byte-identical to the golden captured
# before objectives became pluggable, and the noise-aware
# fidelity:manila objective must compile the same circuit end-to-end.
fidelity-smoke:
	@out=$$($(GO) run ./cmd/quest -algo tfim -n 4 -objective cnot | grep -v '^timing:') || exit 1; \
	echo "$$out" | diff -u examples/golden/fidelity-smoke-cnot.golden - || \
		{ echo "fidelity-smoke: -objective cnot diverged from the pre-objective golden"; exit 1; }; \
	$(GO) run ./cmd/quest -algo tfim -n 4 -objective fidelity:manila >/dev/null || \
		{ echo "fidelity-smoke: fidelity:manila run failed"; exit 1; }; \
	echo "fidelity-smoke: cnot output bit-identical to the pre-objective golden; fidelity:manila ran clean"

# `make bench-fidelity` records the noise-aware objective's cost into the
# "fidelity" section of BENCH_synth.json: the ESP estimator in exact and
# log-domain form, and a full selection-stage Reselect under the cnot vs
# fidelity objectives (the marginal price of noise-aware selection).
bench-fidelity:
	$(GO) test -bench='^(BenchmarkEstimate|BenchmarkLogEstimate|BenchmarkSelectionCNOT|BenchmarkSelectionFidelity)$$' \
		-benchmem -run=^$$ ./internal/fidelity ./internal/pipeline | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -out BENCH_synth.json -section fidelity

# `make bench-pipeline` records the ε-sweep artifact-reuse speedup in
# BENCH_pipeline.json: "full-rerun" re-runs the whole pipeline per sweep
# point (what every sweep paid before the stage refactor), "artifact-reuse"
# synthesizes once and re-runs only the selection stage per point.
bench-pipeline:
	$(GO) test -bench=BenchmarkEpsilonSweepFull$$ -benchmem -run=^$$ ./internal/pipeline | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -out BENCH_pipeline.json -section full-rerun
	$(GO) test -bench=BenchmarkEpsilonSweepReselect$$ -benchmem -run=^$$ ./internal/pipeline | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -out BENCH_pipeline.json -section artifact-reuse

fmt-check:
	@out=$$(gofmt -l cmd internal examples *.go); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
