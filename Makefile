# Verification targets. `make verify` is what CI runs on every PR: the
# concurrency introduced by the parallel trajectory/synthesis engines is
# always exercised under the race detector. The -short path stays under
# ~5 minutes on a few cores; `make verify-full` runs the complete suite.

GO ?= go

.PHONY: build vet test test-race verify verify-full bench fmt-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race -short ./...

verify: vet build test-race

verify-full: vet build
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/noise ./internal/sim ./internal/linalg

fmt-check:
	@out=$$(gofmt -l cmd internal examples *.go); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
