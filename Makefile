# Verification targets. `make verify` is what CI runs on every PR: the
# concurrency introduced by the parallel trajectory/synthesis engines is
# always exercised under the race detector. The -short path stays under
# ~5 minutes on a few cores; `make verify-full` runs the complete suite.

GO ?= go

.PHONY: build vet test test-race verify verify-full bench bench-smoke bench-pipeline cache-smoke fmt-check lint lint-ignores

# Packages holding the hot-path benchmarks recorded in BENCH_synth.json:
# objective/gradient evaluation and synthesis (synth), gate-apply kernels
# (linalg), cached-vs-cold synthesis (ucache), plus the simulator and
# noise engines.
BENCH_PKGS = ./internal/synth ./internal/linalg ./internal/ucache ./internal/noise ./internal/sim

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race -short ./...

# `make lint` runs the project's own static-analysis suite
# (cmd/questlint): determinism, context propagation, budget-error
# wrapping, zero-value sentinels, float-equality hygiene. Zero findings
# is the invariant; suppress only with `// lint:ignore <check> <reason>`
# (see DESIGN.md §4e) and audit the suppressions with `make lint-ignores`.
lint:
	$(GO) run ./cmd/questlint ./...

lint-ignores:
	$(GO) run ./cmd/questlint -list-ignores

verify: fmt-check vet lint build test-race

verify-full: vet lint build
	$(GO) test -race -timeout 30m ./...

# `make bench` refreshes the "after" section of BENCH_synth.json (the
# machine-readable perf trajectory across PRs); earlier sections are left
# in place for comparison. BENCH_SECTION overrides the section name.
BENCH_SECTION ?= after

bench:
	$(GO) test -bench=. -benchmem -run=^$$ $(BENCH_PKGS) | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -out BENCH_synth.json -section $(BENCH_SECTION)

# One-iteration compile-and-run pass over every benchmark; CI uses it to
# catch kernel/benchmark regressions without paying for a full bench run.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ $(BENCH_PKGS) ./internal/pipeline

# `make cache-smoke` exercises the disk-backed synthesis cache across two
# real processes: a cold run populates the journal in a temp dir, then a
# second process must be served entirely from it (zero misses).
cache-smoke:
	@dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/quest -algo tfim -n 4 -synth-cache-dir "$$dir" >/dev/null || exit 1; \
	out=$$($(GO) run ./cmd/quest -algo tfim -n 4 -synth-cache-dir "$$dir") || exit 1; \
	echo "$$out" | grep 'synthesis cache:'; \
	echo "$$out" | grep -q 'synthesis cache: [1-9][0-9]* hits, 0 misses' || \
		{ echo "cache-smoke: warm run was not served from the disk cache"; exit 1; }

# `make bench-pipeline` records the ε-sweep artifact-reuse speedup in
# BENCH_pipeline.json: "full-rerun" re-runs the whole pipeline per sweep
# point (what every sweep paid before the stage refactor), "artifact-reuse"
# synthesizes once and re-runs only the selection stage per point.
bench-pipeline:
	$(GO) test -bench=BenchmarkEpsilonSweepFull$$ -benchmem -run=^$$ ./internal/pipeline | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -out BENCH_pipeline.json -section full-rerun
	$(GO) test -bench=BenchmarkEpsilonSweepReselect$$ -benchmem -run=^$$ ./internal/pipeline | tee /dev/stderr | \
		$(GO) run ./cmd/benchjson -out BENCH_pipeline.json -section artifact-reuse

fmt-check:
	@out=$$(gofmt -l cmd internal examples *.go); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
