package quest

import (
	"math"
	"testing"
)

// TestPublicAPIEndToEnd drives the full advertised workflow through the
// façade only: generate → approximate → ensemble → compare.
func TestPublicAPIEndToEnd(t *testing.T) {
	c, err := GenerateBenchmark("tfim", 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Approximate(c, Config{
		MaxSamples:       4,
		AnnealIterations: 150,
		Seed:             5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCNOTs() > c.CNOTCount() {
		t.Errorf("approximation has more CNOTs (%d) than original (%d)", res.BestCNOTs(), c.CNOTCount())
	}
	out, err := res.EnsembleProbabilities(IdealRunner())
	if err != nil {
		t.Fatal(err)
	}
	if tvd := TVD(Simulate(c), out); tvd > 0.15 {
		t.Errorf("ensemble TVD = %g", tvd)
	}
}

func TestPublicQASMRoundTrip(t *testing.T) {
	c := New(2)
	c.H(0)
	c.CX(0, 1)
	src := WriteQASM(c)
	parsed, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.CNOTCount() != 1 || parsed.NumQubits != 2 {
		t.Errorf("round trip lost structure: %v", parsed)
	}
}

func TestPublicBenchmarksList(t *testing.T) {
	// The nine Table-1 generators plus the random Clifford+T corpus
	// workload.
	names := Benchmarks()
	if len(names) != 10 {
		t.Fatalf("expected 10 benchmark generators, got %d", len(names))
	}
	for _, n := range names {
		if _, err := GenerateBenchmark(n, 4); err != nil {
			t.Errorf("GenerateBenchmark(%s): %v", n, err)
		}
	}
}

func TestPublicNoisySimulation(t *testing.T) {
	c := New(2)
	c.H(0)
	c.CX(0, 1)
	ideal := Simulate(c)
	noisy := SimulateNoisy(c, UniformNoise(0.05), 0, 3)
	var s float64
	for _, v := range noisy {
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("noisy distribution sums to %g", s)
	}
	if TVD(ideal, noisy) == 0 {
		t.Error("noise had no effect")
	}
}

func TestPublicDeviceRun(t *testing.T) {
	c := New(3)
	c.H(0)
	c.CX(0, 2)
	p, err := RunOnDevice(Manila(), c, 1024, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 8 {
		t.Fatalf("distribution length %d", len(p))
	}
}

func TestPublicQiskitBaseline(t *testing.T) {
	c := New(2)
	c.CX(0, 1)
	c.CX(0, 1)
	c.H(0)
	c.H(0)
	out := OptimizeQiskitStyle(c)
	if out.Size() != 0 {
		t.Errorf("baseline failed to remove redundant gates: %v", out)
	}
	lowered := LowerToBasis(c)
	for _, op := range lowered.Ops {
		if op.Name != "u3" && op.Name != "cx" {
			t.Errorf("LowerToBasis emitted %s", op.Name)
		}
	}
}

func TestPublicMetrics(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0.5, 0.5}
	if d := TVD(p, q); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("TVD = %g", d)
	}
	if d := JSD(p, p); d != 0 {
		t.Errorf("JSD(p,p) = %g", d)
	}
}
